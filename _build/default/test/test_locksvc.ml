(* Chubby-style lock service: mutual exclusion, leases, sequencers,
   watches, session lifecycle. *)

module Engine = Beehive_sim.Engine
module Simtime = Beehive_sim.Simtime
module L = Beehive_locksvc.Lock_service

let setup ?lease () =
  let e = Engine.create () in
  (e, L.create e ?lease ())

let test_acquire_release () =
  let _, svc = setup () in
  let s1 = L.create_session svc ~owner:"a" in
  let s2 = L.create_session svc ~owner:"b" in
  (match L.try_acquire svc s1 ~path:"/x" () with
  | `Acquired seq -> Alcotest.(check int) "first sequencer" 1 seq
  | `Held_by o -> Alcotest.failf "unexpected holder %s" o);
  (match L.try_acquire svc s2 ~path:"/x" () with
  | `Held_by o -> Alcotest.(check string) "blocked by a" "a" o
  | `Acquired _ -> Alcotest.fail "mutual exclusion violated");
  L.release svc s1 ~path:"/x";
  (match L.try_acquire svc s2 ~path:"/x" () with
  | `Acquired seq -> Alcotest.(check int) "sequencer advances" 2 seq
  | `Held_by _ -> Alcotest.fail "release did not free the lock");
  Alcotest.(check (option string)) "holder" (Some "b") (L.holder svc ~path:"/x")

let test_reacquire_same_session () =
  let _, svc = setup () in
  let s = L.create_session svc ~owner:"a" in
  let seq1 = match L.try_acquire svc s ~path:"/x" () with `Acquired n -> n | _ -> -1 in
  let seq2 = match L.try_acquire svc s ~path:"/x" () with `Acquired n -> n | _ -> -1 in
  Alcotest.(check int) "idempotent for owner" seq1 seq2

let test_lease_expiry () =
  let e, svc = setup ~lease:(Simtime.of_sec 2.0) () in
  let s1 = L.create_session svc ~owner:"a" in
  ignore (L.try_acquire svc s1 ~path:"/x" ());
  let events = ref [] in
  L.watch svc ~path:"/x" (fun ev -> events := ev :: !events);
  Engine.run_until e (Simtime.of_sec 1.0);
  Alcotest.(check bool) "alive inside lease" true (L.session_alive s1);
  Engine.run_until e (Simtime.of_sec 3.0);
  Alcotest.(check bool) "expired" false (L.session_alive s1);
  Alcotest.(check (option string)) "lock freed" None (L.holder svc ~path:"/x");
  (match !events with
  | [ L.Expired "/x" ] -> ()
  | _ -> Alcotest.fail "expected one Expired event");
  Alcotest.(check int) "no live sessions" 0 (L.n_live_sessions svc)

let test_keep_alive_extends () =
  let e, svc = setup ~lease:(Simtime.of_sec 2.0) () in
  let s = L.create_session svc ~owner:"a" in
  ignore (L.try_acquire svc s ~path:"/x" ());
  (* Renew every second: the session must survive well past the lease. *)
  let h = Engine.every e (Simtime.of_sec 1.0) (fun () -> if L.session_alive s then L.keep_alive s) in
  Engine.run_until e (Simtime.of_sec 10.0);
  Alcotest.(check bool) "still alive" true (L.session_alive s);
  Alcotest.(check (option string)) "still held" (Some "a") (L.holder svc ~path:"/x");
  ignore (Engine.cancel e h);
  Engine.run_until e (Simtime.of_sec 20.0);
  Alcotest.(check bool) "expires once renewals stop" false (L.session_alive s)

let test_close_session_releases () =
  let _, svc = setup () in
  let s = L.create_session svc ~owner:"a" in
  ignore (L.try_acquire svc s ~path:"/x" ());
  ignore (L.try_acquire svc s ~path:"/y" ());
  Alcotest.(check (list string)) "held" [ "/x"; "/y" ] (L.locks_held svc s);
  let events = ref [] in
  L.watch svc ~path:"/y" (fun ev -> events := ev :: !events);
  L.close_session svc s;
  Alcotest.(check (option string)) "x free" None (L.holder svc ~path:"/x");
  (match !events with
  | [ L.Released "/y" ] -> ()
  | _ -> Alcotest.fail "expected graceful Released event");
  (* Idempotent *)
  L.close_session svc s

let test_release_unheld_raises () =
  let _, svc = setup () in
  let s1 = L.create_session svc ~owner:"a" in
  let s2 = L.create_session svc ~owner:"b" in
  ignore (L.try_acquire svc s1 ~path:"/x" ());
  Alcotest.check_raises "foreign release"
    (Invalid_argument "Lock_service.release: lock not held by session") (fun () ->
      L.release svc s2 ~path:"/x")

let prop_mutual_exclusion =
  QCheck.Test.make ~name:"at most one holder per path under random ops" ~count:100
    QCheck.(list (pair (int_bound 3) (int_bound 3)))
    (fun ops ->
      let _, svc = setup () in
      let sessions = Array.init 4 (fun i -> L.create_session svc ~owner:(string_of_int i)) in
      let holders = Hashtbl.create 8 in
      List.for_all
        (fun (path_i, sess_i) ->
          let path = "/p" ^ string_of_int path_i in
          let s = sessions.(sess_i) in
          match L.try_acquire svc s ~path () with
          | `Acquired _ ->
            (* Either it was free, or we already held it. *)
            let prev = Hashtbl.find_opt holders path in
            Hashtbl.replace holders path sess_i;
            (match prev with None -> true | Some p -> p = sess_i)
          | `Held_by owner ->
            (* Must match our model and never be ourselves. *)
            Hashtbl.find_opt holders path = Some (int_of_string owner)
            && int_of_string owner <> sess_i)
        ops)

let test_sequencer_monotonic () =
  let _, svc = setup () in
  let s = L.create_session svc ~owner:"a" in
  let seqs = ref [] in
  for _ = 1 to 5 do
    (match L.try_acquire svc s ~path:"/x" () with
    | `Acquired n -> seqs := n :: !seqs
    | `Held_by _ -> ());
    L.release svc s ~path:"/x"
  done;
  Alcotest.(check (list int)) "monotone" [ 5; 4; 3; 2; 1 ] !seqs;
  Alcotest.(check (option int)) "sequencer readable when free" (Some 5)
    (L.sequencer svc ~path:"/x")

let suite =
  [
    ( "locksvc",
      [
        Alcotest.test_case "acquire/release" `Quick test_acquire_release;
        Alcotest.test_case "reacquire by owner" `Quick test_reacquire_same_session;
        Alcotest.test_case "lease expiry" `Quick test_lease_expiry;
        Alcotest.test_case "keep-alive extends lease" `Quick test_keep_alive_extends;
        Alcotest.test_case "close releases locks" `Quick test_close_session_releases;
        Alcotest.test_case "foreign release rejected" `Quick test_release_unheld_raises;
        QCheck_alcotest.to_alcotest prop_mutual_exclusion;
        Alcotest.test_case "sequencers monotone" `Quick test_sequencer_monotonic;
      ] );
  ]

(* State dictionaries and transactions. *)

module State = Beehive_core.State
module Value = Beehive_core.Value
module Cell = Beehive_core.Cell

let vi n = Value.V_int n

let get_int st ~dict ~key =
  match State.get st ~dict ~key with Some (Value.V_int n) -> Some n | _ -> None

let test_commit () =
  let st = State.create () in
  let tx = State.begin_tx st in
  State.tx_set tx ~dict:"d" ~key:"a" (vi 1);
  State.tx_set tx ~dict:"d" ~key:"b" (vi 2);
  Alcotest.(check (option int)) "invisible before commit" None (get_int st ~dict:"d" ~key:"a");
  State.commit tx;
  Alcotest.(check (option int)) "visible after commit" (Some 1) (get_int st ~dict:"d" ~key:"a");
  Alcotest.(check int) "entry count" 2 (State.entry_count st)

let test_abort () =
  let st = State.create () in
  let tx = State.begin_tx st in
  State.tx_set tx ~dict:"d" ~key:"a" (vi 1);
  State.abort tx;
  Alcotest.(check (option int)) "abort discards" None (get_int st ~dict:"d" ~key:"a");
  Alcotest.check_raises "reuse after abort" (Invalid_argument "State: transaction already finished")
    (fun () -> State.tx_set tx ~dict:"d" ~key:"a" (vi 2))

let test_read_your_writes () =
  let st = State.create () in
  let tx0 = State.begin_tx st in
  State.tx_set tx0 ~dict:"d" ~key:"a" (vi 1);
  State.commit tx0;
  let tx = State.begin_tx st in
  Alcotest.(check bool) "sees base" true (State.tx_mem tx ~dict:"d" ~key:"a");
  State.tx_set tx ~dict:"d" ~key:"a" (vi 5);
  (match State.tx_get tx ~dict:"d" ~key:"a" with
  | Some (Value.V_int 5) -> ()
  | _ -> Alcotest.fail "read-your-writes");
  State.tx_del tx ~dict:"d" ~key:"a";
  Alcotest.(check bool) "delete visible in tx" false (State.tx_mem tx ~dict:"d" ~key:"a");
  State.commit tx;
  Alcotest.(check (option int)) "deleted after commit" None (get_int st ~dict:"d" ~key:"a")

let test_tx_iter_overlay () =
  let st = State.create () in
  let tx0 = State.begin_tx st in
  State.tx_set tx0 ~dict:"d" ~key:"a" (vi 1);
  State.tx_set tx0 ~dict:"d" ~key:"b" (vi 2);
  State.commit tx0;
  let tx = State.begin_tx st in
  State.tx_set tx ~dict:"d" ~key:"c" (vi 3);
  State.tx_del tx ~dict:"d" ~key:"a";
  let seen = ref [] in
  State.tx_iter tx ~dict:"d" (fun k _ -> seen := k :: !seen);
  Alcotest.(check (list string)) "overlayed view" [ "c"; "b" ] !seen;
  State.abort tx

let test_keys_sorted () =
  let st = State.create () in
  let tx = State.begin_tx st in
  List.iter (fun k -> State.tx_set tx ~dict:"d" ~key:k (vi 0)) [ "z"; "a"; "m" ];
  State.commit tx;
  Alcotest.(check (list string)) "sorted" [ "a"; "m"; "z" ] (State.keys st ~dict:"d")

let test_extract_insert () =
  let st = State.create () in
  let tx = State.begin_tx st in
  State.tx_set tx ~dict:"d1" ~key:"a" (vi 1);
  State.tx_set tx ~dict:"d1" ~key:"b" (vi 2);
  State.tx_set tx ~dict:"d2" ~key:"a" (vi 3);
  State.commit tx;
  let moved = State.extract st (Cell.Set.singleton (Cell.cell "d1" "a")) in
  Alcotest.(check int) "one entry moved" 1 (List.length moved);
  Alcotest.(check (option int)) "removed from source" None (get_int st ~dict:"d1" ~key:"a");
  Alcotest.(check (option int)) "others intact" (Some 2) (get_int st ~dict:"d1" ~key:"b");
  let st2 = State.create () in
  State.insert st2 moved;
  Alcotest.(check (option int)) "inserted" (Some 1) (get_int st2 ~dict:"d1" ~key:"a")

let test_extract_wildcard () =
  let st = State.create () in
  let tx = State.begin_tx st in
  State.tx_set tx ~dict:"d1" ~key:"a" (vi 1);
  State.tx_set tx ~dict:"d1" ~key:"b" (vi 2);
  State.tx_set tx ~dict:"d2" ~key:"c" (vi 3);
  State.commit tx;
  let moved = State.extract st (Cell.Set.singleton (Cell.whole "d1")) in
  Alcotest.(check int) "whole dict" 2 (List.length moved);
  Alcotest.(check int) "d2 intact" 1 (State.entry_count st)

let test_snapshot_restore () =
  let st = State.create () in
  let tx = State.begin_tx st in
  State.tx_set tx ~dict:"d" ~key:"a" (vi 1);
  State.tx_set tx ~dict:"e" ~key:"b" (vi 2);
  State.commit tx;
  let st2 = State.restore (State.snapshot st) in
  Alcotest.(check (option int)) "a" (Some 1) (get_int st2 ~dict:"d" ~key:"a");
  Alcotest.(check (option int)) "b" (Some 2) (get_int st2 ~dict:"e" ~key:"b");
  Alcotest.(check int) "size matches" (State.size_bytes st) (State.size_bytes st2)

let test_tx_pending () =
  let st = State.create () in
  let tx = State.begin_tx st in
  State.tx_set tx ~dict:"d" ~key:"b" (vi 2);
  State.tx_set tx ~dict:"d" ~key:"a" (vi 1);
  State.tx_del tx ~dict:"d" ~key:"c";
  let pending = State.tx_pending tx in
  Alcotest.(check int) "3 pending" 3 (List.length pending);
  (match pending with
  | [ ("d", "a", Some _); ("d", "b", Some _); ("d", "c", None) ] -> ()
  | _ -> Alcotest.fail "deterministic order and deletion marker");
  State.abort tx

let prop_commit_equals_model =
  (* Random sequences of set/del in a transaction match an assoc-list
     model after commit. *)
  QCheck.Test.make ~name:"transaction semantics match a sequential model" ~count:200
    QCheck.(list (pair (int_bound 7) (option (int_bound 100))))
    (fun ops ->
      let st = State.create () in
      let tx = State.begin_tx st in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (k, v) ->
          let key = string_of_int k in
          match v with
          | Some n ->
            State.tx_set tx ~dict:"d" ~key (vi n);
            Hashtbl.replace model key n
          | None ->
            State.tx_del tx ~dict:"d" ~key;
            Hashtbl.remove model key)
        ops;
      State.commit tx;
      Hashtbl.fold (fun k n acc -> acc && get_int st ~dict:"d" ~key:k = Some n) model true
      && State.entry_count st = Hashtbl.length model)

let test_cells_of_state () =
  let st = State.create () in
  let tx = State.begin_tx st in
  State.tx_set tx ~dict:"d" ~key:"a" (vi 1);
  State.tx_set tx ~dict:"e" ~key:"b" (vi 1);
  State.commit tx;
  let cells = State.cells st in
  Alcotest.(check bool) "has (d,a)" true (Cell.Set.mem (Cell.cell "d" "a") cells);
  Alcotest.(check int) "two cells" 2 (Cell.Set.cardinal cells)

let suite =
  [
    ( "state",
      [
        Alcotest.test_case "commit" `Quick test_commit;
        Alcotest.test_case "abort" `Quick test_abort;
        Alcotest.test_case "read-your-writes" `Quick test_read_your_writes;
        Alcotest.test_case "tx_iter overlay" `Quick test_tx_iter_overlay;
        Alcotest.test_case "keys sorted" `Quick test_keys_sorted;
        Alcotest.test_case "extract/insert" `Quick test_extract_insert;
        Alcotest.test_case "extract wildcard" `Quick test_extract_wildcard;
        Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
        Alcotest.test_case "tx_pending" `Quick test_tx_pending;
        QCheck_alcotest.to_alcotest prop_commit_equals_model;
        Alcotest.test_case "cells of state" `Quick test_cells_of_state;
      ] );
  ]

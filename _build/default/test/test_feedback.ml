(* Design-bottleneck feedback analytics. *)

open Helpers
module Feedback = Beehive_core.Feedback

let test_wildcard_flagged () =
  let engine, platform = make_platform ~apps:[ kv_app ~with_whole_dict_reader:true () ] () in
  for i = 0 to 5 do
    put platform ~from:(i mod 4) ~key:(Printf.sprintf "k%d" i) ~value:1
  done;
  drain engine;
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:k_get_all Get_all;
  drain engine;
  let items = Feedback.check_centralization platform in
  Alcotest.(check bool) "whole-dictionary access flagged" true
    (List.exists
       (fun (i : Feedback.item) ->
         i.Feedback.severity = Feedback.Critical
         && i.Feedback.app = Some "test.kv"
         && i.Feedback.title = "whole-dictionary access")
       items)

let test_sharded_app_clean () =
  let engine, platform = make_platform ~apps:[ kv_app () ] () in
  for i = 0 to 7 do
    put platform ~from:(i mod 4) ~key:(Printf.sprintf "k%d" i) ~value:1
  done;
  drain engine;
  let items = Feedback.check_centralization platform in
  Alcotest.(check (list string)) "no centralization findings" []
    (List.filter_map
       (fun (i : Feedback.item) ->
         if i.Feedback.app = Some "test.kv" then Some i.Feedback.title else None)
       items)

let test_concentration_flagged () =
  (* All messages map to one key: the single bee handles 100%. *)
  let engine, platform = make_platform ~apps:[ kv_app () ] () in
  (* Two bees so the check applies; one gets all the traffic. *)
  put platform ~from:0 ~key:"cold" ~value:1;
  for _ = 1 to 200 do
    put platform ~from:1 ~key:"hot" ~value:1
  done;
  drain engine;
  let items = Feedback.check_centralization platform in
  Alcotest.(check bool) "effectively centralized flagged" true
    (List.exists
       (fun (i : Feedback.item) -> i.Feedback.title = "effectively centralized")
       items)

let test_provenance_summary () =
  (* An app that emits one pong per ping. *)
  let app =
    App.create ~name:"test.pingpong" ~dicts:[ "store" ]
      [
        App.handler ~kind:"test.ping"
          ~map:(fun _ -> Mapping.with_key "store" "x")
          (fun ctx _ -> Context.emit ctx ~kind:"test.pong" (Noop 0));
      ]
  in
  let engine, platform = make_platform ~apps:[ app ] () in
  for _ = 1 to 10 do
    Platform.inject platform ~from:(Channels.Hive 0) ~kind:"test.ping" (Noop 1)
  done;
  drain engine;
  match Beehive_core.Feedback.provenance_summary platform with
  | (app_name, in_kind, out_kind, n) :: _ ->
    Alcotest.(check string) "app" "test.pingpong" app_name;
    Alcotest.(check string) "in" "test.ping" in_kind;
    Alcotest.(check string) "out" "test.pong" out_kind;
    Alcotest.(check int) "count" 10 n
  | [] -> Alcotest.fail "no provenance edges"

let test_analyze_ordering () =
  let engine, platform = make_platform ~apps:[ kv_app ~with_whole_dict_reader:true () ] () in
  for i = 0 to 5 do
    put platform ~from:(i mod 4) ~key:(Printf.sprintf "k%d" i) ~value:1
  done;
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:k_get_all Get_all;
  drain engine;
  let items = Feedback.analyze platform in
  let rank = function
    | Feedback.Critical -> 0
    | Feedback.Warning -> 1
    | Feedback.Info -> 2
  in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      rank a.Feedback.severity <= rank b.Feedback.severity && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "most severe first" true (sorted items)

let suite =
  [
    ( "feedback",
      [
        Alcotest.test_case "wildcard access flagged" `Quick test_wildcard_flagged;
        Alcotest.test_case "sharded app clean" `Quick test_sharded_app_clean;
        Alcotest.test_case "load concentration flagged" `Quick test_concentration_flagged;
        Alcotest.test_case "provenance summary" `Quick test_provenance_summary;
        Alcotest.test_case "analyze ordering" `Quick test_analyze_ordering;
      ] );
  ]

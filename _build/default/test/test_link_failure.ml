(* Link failure end to end: switch port-status -> driver -> discovery ->
   TE re-route repair, on a ring topology (so an alternative path
   exists). *)

module Engine = Beehive_sim.Engine
module Simtime = Beehive_sim.Simtime
module Rng = Beehive_sim.Rng
module Topology = Beehive_net.Topology
module Flow = Beehive_net.Flow
module Channels = Beehive_net.Channels
module Platform = Beehive_core.Platform
module Switch_agent = Beehive_openflow.Switch_agent
module Driver = Beehive_openflow.Driver
module Wire = Beehive_openflow.Wire
module Discovery = Beehive_apps.Discovery
module Te = Beehive_apps.Te_decoupled

let n_switches = 6

(* One deliberately hot flow from switch 1 to switch 4 (clockwise path
   1-2-3-4 on the ring); everything else cold. *)
let setup () =
  let engine = Engine.create () in
  let platform = Platform.create engine (Platform.default_config ~n_hives:3) in
  let topo = Topology.ring ~n_switches in
  for sw = 0 to n_switches - 1 do
    Channels.assign_switch (Platform.channels platform) ~switch:sw ~hive:(sw mod 3)
  done;
  Platform.register_app platform (Driver.app ());
  Platform.register_app platform (Discovery.app ());
  Platform.register_app platform (Te.app ~delta:500.0 ());
  Platform.start platform;
  let cluster = Switch_agent.create_cluster platform topo in
  for sw = 0 to n_switches - 1 do
    let flows =
      if sw = 1 then
        [|
          {
            Flow.flow_id = 100;
            src_switch = 1;
            dst_switch = 4;
            rate_bps = 10_000.0;
            starts_at = 0.0;
            current_path = Topology.path topo 1 4;
          };
        |]
      else [||]
    in
    ignore (Switch_agent.add cluster ~sw ~flows ())
  done;
  Switch_agent.connect_all cluster ();
  ignore
    (Engine.schedule_at engine (Simtime.of_sec 1.0) (fun () ->
         Switch_agent.send_all_lldp cluster));
  ignore
    (Engine.schedule_at engine (Simtime.of_sec 2.0) (fun () ->
         Switch_agent.send_all_lldp cluster));
  (engine, platform, topo, cluster)

let route_paths platform =
  match
    Platform.find_owner platform ~app:Te.app_name (Beehive_core.Cell.whole Te.dict_route)
  with
  | None -> []
  | Some bee ->
    List.filter_map
      (fun (dict, key, v) ->
        if dict = Te.dict_route then
          match v with
          | Te.V_rerouted { r_path; _ } -> Some (int_of_string key, r_path)
          | _ -> None
        else None)
      (Platform.bee_state_entries platform bee)

let test_reroute_repair_on_link_failure () =
  let engine, platform, _, cluster = setup () in
  (* Let the hot flow be detected and re-routed; both ring arcs between 1
     and 4 have equal length, so accept whichever BFS picked. *)
  Engine.run_until engine (Simtime.of_sec 6.0);
  let initial =
    match route_paths platform with
    | [ (100, path) ] -> path
    | l -> Alcotest.failf "expected flow 100 routed, got %d records" (List.length l)
  in
  Alcotest.(check int) "path spans an arc of the ring" 4 (List.length initial);
  Alcotest.(check int) "starts at 1" 1 (List.hd initial);
  (* Kill the middle link of that path. *)
  let a, b =
    match initial with _ :: x :: y :: _ -> (x, y) | _ -> Alcotest.fail "path too short"
  in
  Switch_agent.fail_link cluster a b;
  Engine.run_until engine (Simtime.of_sec 9.0);
  (* Discovery retired the link on both sides. *)
  Alcotest.(check bool) "a no longer sees b" true
    (not (List.mem b (Discovery.neighbors_of platform ~switch:a)));
  Alcotest.(check bool) "b no longer sees a" true
    (not (List.mem a (Discovery.neighbors_of platform ~switch:b)));
  (* TE repaired the flow around the other arc. *)
  match route_paths platform with
  | [ (100, path) ] ->
    Alcotest.(check bool) "repaired path avoids the dead link" true
      (not (Beehive_apps.Te_common.path_uses_link path ~a ~b));
    Alcotest.(check bool) "path changed" true (path <> initial);
    Alcotest.(check int) "still 1 -> 4" 4 (List.nth path (List.length path - 1))
  | l -> Alcotest.failf "expected flow 100 still routed, got %d records" (List.length l)

let test_unrepairable_route_dropped () =
  (* On a pure tree there is no alternative: the repair deletes the
     record instead of installing a bogus path. *)
  let engine = Engine.create () in
  let platform = Platform.create engine (Platform.default_config ~n_hives:2) in
  let topo = Topology.linear ~n_switches:3 in
  for sw = 0 to 2 do
    Channels.assign_switch (Platform.channels platform) ~switch:sw ~hive:(sw mod 2)
  done;
  Platform.register_app platform (Driver.app ());
  Platform.register_app platform (Discovery.app ());
  Platform.register_app platform (Te.app ~delta:500.0 ());
  Platform.start platform;
  let cluster = Switch_agent.create_cluster platform topo in
  for sw = 0 to 2 do
    let flows =
      if sw = 0 then
        [|
          {
            Flow.flow_id = 7;
            src_switch = 0;
            dst_switch = 2;
            rate_bps = 10_000.0;
            starts_at = 0.0;
            current_path = Topology.path topo 0 2;
          };
        |]
      else [||]
    in
    ignore (Switch_agent.add cluster ~sw ~flows ())
  done;
  Switch_agent.connect_all cluster ();
  ignore
    (Engine.schedule_at engine (Simtime.of_sec 1.0) (fun () ->
         Switch_agent.send_all_lldp cluster));
  ignore
    (Engine.schedule_at engine (Simtime.of_sec 2.0) (fun () ->
         Switch_agent.send_all_lldp cluster));
  Engine.run_until engine (Simtime.of_sec 6.0);
  Alcotest.(check int) "flow routed" 1 (Te.rerouted_count platform);
  Switch_agent.fail_link cluster 1 2;
  Engine.run_until engine (Simtime.of_sec 9.0);
  Alcotest.(check int) "unrepairable record dropped" 0 (Te.rerouted_count platform)

let test_dataplane_stops_on_dead_link () =
  let engine, _, topo, cluster = setup () in
  Engine.run_until engine (Simtime.of_sec 3.0);
  let s2 = Option.get (Switch_agent.get cluster 2) in
  Beehive_openflow.Flow_table.apply (Switch_agent.flow_table s2)
    {
      Beehive_openflow.Flow_table.fm_switch = 2;
      fm_command = Beehive_openflow.Flow_table.Add;
      fm_priority = 5;
      fm_match = Beehive_openflow.Flow_table.match_dst_mac 9L;
      fm_actions =
        [ Beehive_openflow.Flow_table.Output (Topology.port_towards topo ~src:2 ~dst:3) ];
    };
  Switch_agent.fail_link cluster 2 3;
  let dropped = Switch_agent.packets_dropped cluster in
  Switch_agent.inject_host_packet s2 ~in_port:100 ~src_mac:1L ~dst_mac:9L ();
  Engine.run_until engine (Simtime.add (Engine.now engine) (Simtime.of_sec 1.0));
  Alcotest.(check int) "packet dropped at dead link" (dropped + 1)
    (Switch_agent.packets_dropped cluster)

let suite =
  [
    ( "link_failure",
      [
        Alcotest.test_case "re-route repaired around failure" `Quick
          test_reroute_repair_on_link_failure;
        Alcotest.test_case "unrepairable route dropped" `Quick test_unrepairable_route_dropped;
        Alcotest.test_case "dataplane stops on dead link" `Quick
          test_dataplane_stops_on_dead_link;
      ] );
  ]

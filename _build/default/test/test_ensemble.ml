(* The whole ensemble at once: driver + decoupled TE + learning switch +
   discovery + instrumentation sharing one control plane — Section 6's
   "ensemble of control applications managing the network as a cohesive
   whole". Verifies the apps interplay without interference. *)

module Engine = Beehive_sim.Engine
module Simtime = Beehive_sim.Simtime
module Rng = Beehive_sim.Rng
module Topology = Beehive_net.Topology
module Flow = Beehive_net.Flow
module Channels = Beehive_net.Channels
module Platform = Beehive_core.Platform
module Instrumentation = Beehive_core.Instrumentation
module Stats = Beehive_core.Stats
module Switch_agent = Beehive_openflow.Switch_agent
module Driver = Beehive_openflow.Driver
module Wire = Beehive_openflow.Wire

let n_hives = 4
let n_switches = 12

let setup () =
  let engine = Engine.create () in
  let platform = Platform.create engine (Platform.default_config ~n_hives) in
  let topo = Topology.tree ~arity:2 ~n_switches in
  for sw = 0 to n_switches - 1 do
    Channels.assign_switch (Platform.channels platform) ~switch:sw
      ~hive:(sw * n_hives / n_switches)
  done;
  Platform.register_app platform (Driver.app ());
  Platform.register_app platform (Beehive_apps.Te_decoupled.app ~delta:500.0 ());
  Platform.register_app platform (Beehive_apps.Learning_switch.app ());
  Platform.register_app platform (Beehive_apps.Discovery.app ());
  let instr =
    Instrumentation.install platform
      { Instrumentation.default_config with optimize = false }
  in
  Platform.start platform;
  let cluster = Switch_agent.create_cluster platform topo in
  let flows =
    Flow.generate (Rng.create 3) topo ~per_switch:5 ~hot_fraction:0.4 ~base_rate:100.0
      ~hot_rate:2000.0 ()
  in
  for sw = 0 to n_switches - 1 do
    let sw_flows =
      Array.of_list
        (List.filter (fun (f : Flow.t) -> f.Flow.src_switch = sw) (Array.to_list flows))
    in
    ignore (Switch_agent.add cluster ~sw ~flows:sw_flows ())
  done;
  Switch_agent.connect_all cluster ();
  ignore
    (Engine.schedule_at engine (Simtime.of_sec 1.0) (fun () ->
         Switch_agent.send_all_lldp cluster));
  ignore
    (Engine.schedule_at engine (Simtime.of_sec 2.0) (fun () ->
         Switch_agent.send_all_lldp cluster));
  (engine, platform, topo, cluster, instr)

let test_ensemble_interplay () =
  let engine, platform, topo, cluster, instr = setup () in
  (* Hosts talk through the fabric: packet-ins feed the learning switch. *)
  ignore
    (Engine.schedule_at engine (Simtime.of_sec 3.0) (fun () ->
         let s5 = Option.get (Switch_agent.get cluster 5) in
         Switch_agent.inject_host_packet s5 ~in_port:100 ~src_mac:0xAAL ~dst_mac:0xBBL ();
         Switch_agent.inject_host_packet s5 ~in_port:101 ~src_mac:0xBBL ~dst_mac:0xAAL ()));
  Engine.run_until engine (Simtime.of_sec 8.0);

  (* 1. Discovery built the full adjacency. *)
  for sw = 0 to n_switches - 1 do
    let expected = List.sort_uniq Int.compare (Topology.neighbors topo sw) in
    Alcotest.(check (list int))
      (Printf.sprintf "adjacency of switch %d" sw)
      expected
      (Beehive_apps.Discovery.neighbors_of platform ~switch:sw)
  done;

  (* 2. The learning switch learned both hosts on switch 5. *)
  Alcotest.(check (option int)) "learned 0xAA" (Some 100)
    (Beehive_apps.Learning_switch.learned_port platform ~switch:5 ~mac:0xAAL);
  Alcotest.(check (option int)) "learned 0xBB" (Some 101)
    (Beehive_apps.Learning_switch.learned_port platform ~switch:5 ~mac:0xBBL);

  (* 3. TE observed stats and re-routed the hot flows. *)
  Alcotest.(check bool) "TE rerouted hot flows" true
    (Beehive_apps.Te_decoupled.rerouted_count platform > 0);

  (* 4. Instrumentation aggregated loads for several apps. *)
  let observed_apps =
    List.map (fun l -> l.Instrumentation.bl_app) (Instrumentation.loads instr)
    |> List.sort_uniq String.compare
  in
  Alcotest.(check bool) "driver instrumented" true
    (List.mem Driver.app_name observed_apps);
  Alcotest.(check bool) "TE instrumented" true
    (List.mem Beehive_apps.Te_decoupled.app_name observed_apps);

  (* 5. No handler anywhere raised (no access violations, no crashes). *)
  List.iter
    (fun (v : Platform.bee_view) ->
      match Platform.bee_stats platform v.Platform.view_id with
      | Some s ->
        if Stats.errors s > 0 then
          Alcotest.failf "bee %d (%s) had %d handler errors" v.Platform.view_id
            v.Platform.view_app (Stats.errors s)
      | None -> ())
    (Platform.live_bees platform);

  (* 6. Apps never share bees: every bee belongs to exactly one app, and
     each app's cells are disjoint from other apps' by construction. *)
  Beehive_core.Registry.check_invariant (Platform.registry platform)

let test_ensemble_is_deterministic () =
  let run () =
    let engine, platform, _, _, _ = setup () in
    Engine.run_until engine (Simtime.of_sec 6.0);
    (Platform.total_processed platform, Platform.total_lock_rpcs platform)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair int int)) "identical replays" a b

let suite =
  [
    ( "ensemble",
      [
        Alcotest.test_case "apps interplay on one control plane" `Slow test_ensemble_interplay;
        Alcotest.test_case "ensemble deterministic" `Slow test_ensemble_is_deterministic;
      ] );
  ]

(* Placement policies and the external-datastore baseline. *)

open Helpers
module Instrumentation = Beehive_core.Instrumentation
module Ext_store = Beehive_core.Ext_store

let load ~bee ~hive ~processed ~in_by_hive =
  {
    Instrumentation.bl_bee = bee;
    bl_app = "test.kv";
    bl_hive = hive;
    bl_processed = processed;
    bl_in_by_hive = in_by_hive;
  }

(* A dummy platform for policies that only need hive counts. *)
let dummy_platform ?(n_hives = 4) () =
  let _, platform = make_platform ~n_hives () in
  platform

let test_greedy_policy_decisions () =
  let platform = dummy_platform () in
  let p = Instrumentation.greedy_source_policy ~majority:0.5 ~min_messages:5 () in
  let decisions =
    p platform
      [
        (* clear majority from hive 2: migrate *)
        load ~bee:1 ~hive:0 ~processed:10 ~in_by_hive:[ (0, 1.0); (2, 9.0) ];
        (* balanced: stay *)
        load ~bee:2 ~hive:0 ~processed:10 ~in_by_hive:[ (2, 5.0); (3, 5.0) ];
        (* too little data: stay *)
        load ~bee:3 ~hive:0 ~processed:2 ~in_by_hive:[ (2, 2.0) ];
        (* majority is the current hive: stay *)
        load ~bee:4 ~hive:2 ~processed:10 ~in_by_hive:[ (2, 9.0); (0, 1.0) ];
      ]
  in
  (* Policies run on the abstract view, so bee 1 is proposed even though
     this dummy platform has no such bee (migrate_bee later rejects). *)
  match decisions with
  | [ d ] ->
    Alcotest.(check int) "bee" 1 d.Instrumentation.d_bee;
    Alcotest.(check int) "target" 2 d.Instrumentation.d_to_hive
  | l -> Alcotest.failf "expected one decision, got %d" (List.length l)

let test_load_balance_policy () =
  let platform = dummy_platform () in
  let p = Instrumentation.load_balance_policy ~imbalance:2.0 () in
  (* Hive 0 does 300 of 330 total: imbalance, shed its lightest bee. *)
  let decisions =
    p platform
      [
        load ~bee:1 ~hive:0 ~processed:200 ~in_by_hive:[ (0, 200.0) ];
        load ~bee:2 ~hive:0 ~processed:100 ~in_by_hive:[ (0, 100.0) ];
        load ~bee:3 ~hive:1 ~processed:30 ~in_by_hive:[ (1, 30.0) ];
      ]
  in
  (match decisions with
  | [ d ] ->
    Alcotest.(check int) "sheds lightest hot bee" 2 d.Instrumentation.d_bee;
    Alcotest.(check bool) "to a calm hive" true (d.Instrumentation.d_to_hive <> 0)
  | l -> Alcotest.failf "expected one decision, got %d" (List.length l));
  (* Balanced cluster: no decision. *)
  let none =
    p platform
      [
        load ~bee:1 ~hive:0 ~processed:100 ~in_by_hive:[ (0, 100.0) ];
        load ~bee:2 ~hive:1 ~processed:100 ~in_by_hive:[ (1, 100.0) ];
        load ~bee:3 ~hive:2 ~processed:100 ~in_by_hive:[ (2, 100.0) ];
        load ~bee:4 ~hive:3 ~processed:100 ~in_by_hive:[ (3, 100.0) ];
      ]
  in
  Alcotest.(check int) "balanced -> none" 0 (List.length none)

let test_combined_policy_first_wins () =
  let platform = dummy_platform () in
  let p1 : Instrumentation.policy =
   fun _ _ -> [ { Instrumentation.d_bee = 1; d_to_hive = 2; d_reason = "p1" } ]
  in
  let p2 : Instrumentation.policy =
   fun _ _ ->
    [
      { Instrumentation.d_bee = 1; d_to_hive = 3; d_reason = "p2" };
      { Instrumentation.d_bee = 9; d_to_hive = 3; d_reason = "p2" };
    ]
  in
  match Instrumentation.combined_policy [ p1; p2 ] platform [] with
  | [ a; b ] ->
    Alcotest.(check string) "bee 1 kept from p1" "p1" a.Instrumentation.d_reason;
    Alcotest.(check int) "bee 9 from p2" 9 b.Instrumentation.d_bee
  | l -> Alcotest.failf "expected two decisions, got %d" (List.length l)

let test_load_balance_end_to_end () =
  (* Six busy bees crammed on hive 0 with purely local traffic: the
     greedy source policy would never move them; load-balance does. *)
  let engine = Engine.create () in
  let platform = Platform.create engine (Platform.default_config ~n_hives:4) in
  Platform.register_app platform (kv_app ());
  let handle =
    Instrumentation.install platform
      {
        Instrumentation.default_config with
        optimize = true;
        policy = Some (Instrumentation.load_balance_policy ~imbalance:1.5 ());
      }
  in
  Platform.start platform;
  for i = 0 to 5 do
    put platform ~from:0 ~key:(Printf.sprintf "k%d" i) ~value:1
  done;
  drain engine;
  let h =
    Engine.every engine (Simtime.of_ms 100) (fun () ->
        for i = 0 to 5 do
          put platform ~from:0 ~key:(Printf.sprintf "k%d" i) ~value:1
        done)
  in
  Engine.run_until engine (Simtime.of_sec 20.0);
  ignore (Engine.cancel engine h);
  Alcotest.(check bool) "load-balance migrated bees off hive 0" true
    (Instrumentation.performed_migrations handle > 0);
  let hives =
    List.filter_map
      (fun (v : Platform.bee_view) ->
        if v.Platform.view_app = "test.kv" then Some v.Platform.view_hive else None)
      (Platform.live_bees platform)
    |> List.sort_uniq Int.compare
  in
  Alcotest.(check bool) "bees now on several hives" true (List.length hives > 1)

(* --- external store ---------------------------------------------------- *)

let test_ext_store_roundtrip () =
  let engine, platform = make_platform ~n_hives:4 () in
  let store = Ext_store.create platform () in
  let got = ref None in
  Ext_store.put store ~from_hive:3 ~key:"k" (Value.V_int 42) (fun () ->
      Ext_store.get store ~from_hive:3 ~key:"k" (fun v -> got := v));
  Alcotest.(check bool) "async: nothing yet" true (!got = None);
  drain engine;
  (match !got with
  | Some (Value.V_int 42) -> ()
  | _ -> Alcotest.fail "value did not round-trip");
  Alcotest.(check int) "2 rpcs" 2 (Ext_store.total_rpcs store);
  Alcotest.(check int) "1 key" 1 (Ext_store.n_keys store)

let test_ext_store_charges_channel () =
  let engine, platform = make_platform ~n_hives:4 () in
  let store = Ext_store.create platform ~n_store_nodes:1 () in
  (* Shard is hive 0; client on hive 3: bytes must cross 3 -> 0. *)
  let matrix = Channels.matrix (Platform.channels platform) in
  let before = Beehive_net.Traffic_matrix.bytes matrix ~src:3 ~dst:0 in
  Ext_store.put store ~from_hive:3 ~key:"k" (Value.V_string (String.make 100 'x')) (fun () -> ());
  drain engine;
  let after = Beehive_net.Traffic_matrix.bytes matrix ~src:3 ~dst:0 in
  Alcotest.(check bool) "payload crossed the control channel" true (after -. before > 100.0);
  Alcotest.(check bool) "latency recorded" true
    (Ext_store.rpc_latency_percentile store 0.5 <> None)

let test_ext_store_update () =
  let engine, platform = make_platform ~n_hives:4 () in
  let store = Ext_store.create platform () in
  let bump prev =
    match prev with Some (Value.V_int n) -> Value.V_int (n + 1) | _ -> Value.V_int 1
  in
  Ext_store.update store ~from_hive:1 ~key:"c" bump (fun _ -> ());
  drain engine;
  Ext_store.update store ~from_hive:2 ~key:"c" bump (fun _ -> ());
  drain engine;
  let v = Ext_store.fold_keys store (fun k v acc -> if k = "c" then Some v else acc) None in
  match v with
  | Some (Value.V_int 2) -> ()
  | _ -> Alcotest.fail "read-modify-write lost an update"

let test_te_external_scenario () =
  let module Scenario = Beehive_harness.Scenario in
  let cfg =
    {
      Scenario.quick_config with
      Scenario.n_hives = 4;
      n_switches = 12;
      flows_per_switch = 10;
      hot_fraction = 0.2;
      flow_start_spread = 3.0;
      warmup = Simtime.of_sec 3.0;
      duration = Simtime.of_sec 6.0;
      te = Scenario.Te_external;
    }
  in
  let sc = Scenario.build cfg in
  Scenario.run sc;
  let store = Option.get (Scenario.ext_store sc) in
  Alcotest.(check bool) "store holds per-switch records" true (Ext_store.n_keys store >= 12);
  Alcotest.(check bool) "re-routes happened through the store" true
    (Beehive_apps.Te_external.rerouted_count store > 0);
  (* The whole point: way more control-channel traffic than the
     cell-based design. *)
  let ext = Beehive_harness.Summary.of_scenario sc in
  let dec =
    let sc = Scenario.build { cfg with Scenario.te = Scenario.Te_decoupled } in
    Scenario.run sc;
    Beehive_harness.Summary.of_scenario sc
  in
  Alcotest.(check bool) "external store costs more bandwidth" true
    (ext.Beehive_harness.Summary.s_mean_kbps
    > 2.0 *. dec.Beehive_harness.Summary.s_mean_kbps)

let suite =
  [
    ( "policies+ext_store",
      [
        Alcotest.test_case "greedy policy decisions" `Quick test_greedy_policy_decisions;
        Alcotest.test_case "load-balance policy" `Quick test_load_balance_policy;
        Alcotest.test_case "combined policy first-wins" `Quick test_combined_policy_first_wins;
        Alcotest.test_case "load-balance end to end" `Quick test_load_balance_end_to_end;
        Alcotest.test_case "ext store roundtrip" `Quick test_ext_store_roundtrip;
        Alcotest.test_case "ext store charges channel" `Quick test_ext_store_charges_channel;
        Alcotest.test_case "ext store read-modify-write" `Quick test_ext_store_update;
        Alcotest.test_case "te.external scenario" `Slow test_te_external_scenario;
      ] );
  ]

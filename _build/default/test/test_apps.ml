(* Learning switch, NIB, network virtualization, Kandoo. *)

module Engine = Beehive_sim.Engine
module Simtime = Beehive_sim.Simtime
module Channels = Beehive_net.Channels
module Platform = Beehive_core.Platform
module Cell = Beehive_core.Cell
module Wire = Beehive_openflow.Wire
module FT = Beehive_openflow.Flow_table
module Learning_switch = Beehive_apps.Learning_switch
module Nib = Beehive_apps.Nib
module Netvirt = Beehive_apps.Netvirt
module Kandoo = Beehive_apps.Kandoo

let make_platform ?(n_hives = 4) apps =
  let engine = Engine.create () in
  let platform = Platform.create engine (Platform.default_config ~n_hives) in
  List.iter (Platform.register_app platform) apps;
  Platform.start platform;
  (engine, platform)

let drain engine = Engine.run_until engine (Simtime.add (Engine.now engine) (Simtime.of_sec 1.0))

(* --- learning switch ------------------------------------------------- *)

let packet_in platform ~switch ~port ~src ~dst =
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:Wire.k_app_packet_in
    (Wire.App_packet_in { api_switch = switch; api_port = port; api_src_mac = src; api_dst_mac = dst })

let test_learning_switch_learns_and_floods () =
  let outs = ref [] in
  let listener =
    Beehive_core.App.create ~name:"test.out" ~dicts:[ "x" ]
      [
        Beehive_core.App.handler ~kind:Wire.k_app_packet_out
          ~map:(fun _ -> Beehive_core.Mapping.Local)
          (fun _ msg ->
            match msg.Beehive_core.Message.payload with
            | Wire.App_packet_out { apo_switch; apo_port; _ } -> outs := (apo_switch, apo_port) :: !outs
            | _ -> ());
      ]
  in
  let engine, platform = make_platform [ Learning_switch.app (); listener ] in
  (* Unknown destination: flood. *)
  packet_in platform ~switch:1 ~port:4 ~src:100L ~dst:200L;
  drain engine;
  Alcotest.(check (list (pair int int))) "flood" [ (1, -1) ] !outs;
  Alcotest.(check (option int)) "src learned" (Some 4)
    (Learning_switch.learned_port platform ~switch:1 ~mac:100L);
  outs := [];
  (* Reply: now the destination is known. *)
  packet_in platform ~switch:1 ~port:7 ~src:200L ~dst:100L;
  drain engine;
  Alcotest.(check (list (pair int int))) "unicast to learned port" [ (1, 4) ] !outs;
  Alcotest.(check (option int)) "dst learned too" (Some 7)
    (Learning_switch.learned_port platform ~switch:1 ~mac:200L);
  (* MAC moves port. *)
  packet_in platform ~switch:1 ~port:9 ~src:100L ~dst:200L;
  drain engine;
  Alcotest.(check (option int)) "relearns on move" (Some 9)
    (Learning_switch.learned_port platform ~switch:1 ~mac:100L)

let test_learning_switch_state_is_per_switch () =
  let engine, platform = make_platform [ Learning_switch.app () ] in
  packet_in platform ~switch:1 ~port:4 ~src:100L ~dst:200L;
  packet_in platform ~switch:2 ~port:5 ~src:100L ~dst:200L;
  drain engine;
  Alcotest.(check (option int)) "switch 1 table" (Some 4)
    (Learning_switch.learned_port platform ~switch:1 ~mac:100L);
  Alcotest.(check (option int)) "switch 2 table" (Some 5)
    (Learning_switch.learned_port platform ~switch:2 ~mac:100L);
  let o1 =
    Platform.find_owner platform ~app:Learning_switch.app_name
      (Cell.cell Learning_switch.dict_macs "1")
  in
  let o2 =
    Platform.find_owner platform ~app:Learning_switch.app_name
      (Cell.cell Learning_switch.dict_macs "2")
  in
  Alcotest.(check bool) "one bee per switch" true (o1 <> o2)

(* --- NIB -------------------------------------------------------------- *)

let test_nib_graph_ops () =
  let engine, platform = make_platform [ Nib.app () ] in
  let inj kind payload = Platform.inject platform ~from:(Channels.Hive 1) ~kind payload in
  inj Nib.k_add_node (Nib.Add_node { an_id = "sw1"; an_kind = "switch" });
  inj Nib.k_add_node (Nib.Add_node { an_id = "sw2"; an_kind = "switch" });
  inj Nib.k_add_node (Nib.Add_node { an_id = "h1"; an_kind = "host" });
  drain engine;
  inj Nib.k_add_link (Nib.Add_link { al_src = "sw1"; al_dst = "sw2" });
  inj Nib.k_add_link (Nib.Add_link { al_src = "sw2"; al_dst = "sw1" });
  inj Nib.k_add_link (Nib.Add_link { al_src = "sw1"; al_dst = "h1" });
  inj Nib.k_set_attr (Nib.Set_attr { sa_id = "sw1"; sa_key = "dpid"; sa_value = "0xa" });
  drain engine;
  Alcotest.(check bool) "node exists" true (Nib.node_exists platform "sw1");
  Alcotest.(check (list string)) "links sorted" [ "h1"; "sw2" ] (Nib.node_links platform "sw1");
  Alcotest.(check (list (pair string string))) "attrs" [ ("dpid", "0xa") ]
    (Nib.node_attrs platform "sw1");
  inj Nib.k_del_link (Nib.Del_link { dl_src = "sw1"; dl_dst = "sw2" });
  inj Nib.k_del_node (Nib.Del_node { dn_id = "h1" });
  drain engine;
  Alcotest.(check (list string)) "link removed" [ "h1" ] (Nib.node_links platform "sw1");
  Alcotest.(check bool) "node removed" false (Nib.node_exists platform "h1")

let test_nib_query_reply () =
  let infos = ref [] in
  let listener =
    Beehive_core.App.create ~name:"test.nibq" ~dicts:[ "x" ]
      [
        Beehive_core.App.handler ~kind:Nib.k_node_info
          ~map:(fun _ -> Beehive_core.Mapping.Local)
          (fun _ msg ->
            match msg.Beehive_core.Message.payload with
            | Nib.Node_info { ni_token; ni_exists; ni_kind; _ } ->
              infos := (ni_token, ni_exists, ni_kind) :: !infos
            | _ -> ());
      ]
  in
  let engine, platform = make_platform [ Nib.app (); listener ] in
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:Nib.k_add_node
    (Nib.Add_node { an_id = "sw1"; an_kind = "switch" });
  drain engine;
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:Nib.k_query
    (Nib.Query { q_id = "sw1"; q_token = 77 });
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:Nib.k_query
    (Nib.Query { q_id = "ghost"; q_token = 78 });
  drain engine;
  Alcotest.(check int) "two replies" 2 (List.length !infos);
  List.iter
    (fun (token, exists, kind) ->
      match token with
      | 77 ->
        Alcotest.(check bool) "sw1 exists" true exists;
        Alcotest.(check string) "kind" "switch" kind
      | 78 -> Alcotest.(check bool) "ghost missing" false exists
      | t -> Alcotest.failf "unexpected token %d" t)
    !infos

let test_nib_nodes_shard () =
  let engine, platform = make_platform [ Nib.app () ] in
  List.iteri
    (fun i id ->
      Platform.inject platform
        ~from:(Channels.Hive (i mod 4))
        ~kind:Nib.k_add_node
        (Nib.Add_node { an_id = id; an_kind = "switch" }))
    [ "a"; "b"; "c"; "d" ];
  drain engine;
  let owners =
    List.filter_map
      (fun id -> Platform.find_owner platform ~app:Nib.app_name (Cell.cell Nib.dict_nodes id))
      [ "a"; "b"; "c"; "d" ]
  in
  Alcotest.(check int) "one bee per node" 4 (List.length (List.sort_uniq Int.compare owners))

(* --- network virtualization ------------------------------------------ *)

let test_netvirt_forwarding_and_isolation () =
  let outs = ref [] in
  let drops = ref [] in
  let listener =
    Beehive_core.App.create ~name:"test.nv" ~dicts:[ "x" ]
      [
        Beehive_core.App.handler ~kind:Wire.k_app_packet_out
          ~map:(fun _ -> Beehive_core.Mapping.Local)
          (fun _ msg ->
            match msg.Beehive_core.Message.payload with
            | Wire.App_packet_out { apo_switch; apo_port; _ } -> outs := (apo_switch, apo_port) :: !outs
            | _ -> ());
        Beehive_core.App.handler ~kind:Netvirt.k_isolation_drop
          ~map:(fun _ -> Beehive_core.Mapping.Local)
          (fun _ msg ->
            match msg.Beehive_core.Message.payload with
            | Netvirt.Isolation_drop { id_vnet; _ } -> drops := id_vnet :: !drops
            | _ -> ());
      ]
  in
  let engine, platform = make_platform [ Netvirt.app (); listener ] in
  let inj kind payload = Platform.inject platform ~from:(Channels.Hive 0) ~kind payload in
  inj Netvirt.k_create (Netvirt.Create_vnet { cv_vnet = "blue"; cv_tenant = "acme" });
  inj Netvirt.k_create (Netvirt.Create_vnet { cv_vnet = "red"; cv_tenant = "evil" });
  drain engine;
  inj Netvirt.k_attach (Netvirt.Attach_port { ap_vnet = "blue"; ap_switch = 1; ap_port = 10; ap_mac = 100L });
  inj Netvirt.k_attach (Netvirt.Attach_port { ap_vnet = "blue"; ap_switch = 2; ap_port = 20; ap_mac = 101L });
  inj Netvirt.k_attach (Netvirt.Attach_port { ap_vnet = "red"; ap_switch = 1; ap_port = 11; ap_mac = 200L });
  drain engine;
  Alcotest.(check (option string)) "tenant" (Some "acme") (Netvirt.vnet_tenant platform ~vnet:"blue");
  Alcotest.(check int) "blue ports" 2 (List.length (Netvirt.vnet_ports platform ~vnet:"blue"));
  (* Intra-VN packet forwards to the right attachment. *)
  inj Netvirt.k_packet (Netvirt.Vn_packet { vp_vnet = "blue"; vp_src_mac = 100L; vp_dst_mac = 101L });
  drain engine;
  Alcotest.(check (list (pair int int))) "forwarded" [ (2, 20) ] !outs;
  (* Cross-VN destination: isolated, dropped. *)
  outs := [];
  inj Netvirt.k_packet (Netvirt.Vn_packet { vp_vnet = "blue"; vp_src_mac = 100L; vp_dst_mac = 200L });
  drain engine;
  Alcotest.(check (list (pair int int))) "no leak" [] !outs;
  Alcotest.(check (list string)) "isolation drop" [ "blue" ] !drops;
  (* Detach removes reachability. *)
  inj Netvirt.k_detach (Netvirt.Detach_port { dp_vnet = "blue"; dp_mac = 101L });
  drain engine;
  inj Netvirt.k_packet (Netvirt.Vn_packet { vp_vnet = "blue"; vp_src_mac = 100L; vp_dst_mac = 101L });
  drain engine;
  Alcotest.(check (list (pair int int))) "gone after detach" [] !outs

let test_netvirt_vnets_shard () =
  let engine, platform = make_platform [ Netvirt.app () ] in
  List.iteri
    (fun i vn ->
      Platform.inject platform
        ~from:(Channels.Hive (i mod 4))
        ~kind:Netvirt.k_create
        (Netvirt.Create_vnet { cv_vnet = vn; cv_tenant = "t" }))
    [ "vn0"; "vn1"; "vn2"; "vn3" ];
  drain engine;
  let owners =
    List.filter_map
      (fun vn -> Platform.find_owner platform ~app:Netvirt.app_name (Cell.cell Netvirt.dict_vnets vn))
      [ "vn0"; "vn1"; "vn2"; "vn3" ]
  in
  Alcotest.(check int) "one bee per vnet" 4 (List.length (List.sort_uniq Int.compare owners))

(* --- Kandoo ----------------------------------------------------------- *)

let stat_reply platform ~switch ~flow ~bytes =
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:Wire.k_app_stat_reply
    (Wire.Stat_reply
       {
         sr_switch = switch;
         sr_stats =
           [
             { Wire.fs_flow = flow; fs_src_sw = switch; fs_dst_sw = switch + 1;
               fs_bytes = bytes; fs_packets = 1; fs_duration_sec = 0.0 };
           ];
       })

let test_kandoo_elephant_detection () =
  let engine, platform =
    make_platform [ Kandoo.local_app ~threshold:500.0 (); Kandoo.root_app () ]
  in
  (* Two samples give a rate; flow 1 is an elephant, flow 2 is a mouse. *)
  stat_reply platform ~switch:3 ~flow:1 ~bytes:0.0;
  stat_reply platform ~switch:4 ~flow:2 ~bytes:0.0;
  drain engine;
  Engine.run_until engine (Simtime.add (Engine.now engine) (Simtime.of_sec 1.0));
  stat_reply platform ~switch:3 ~flow:1 ~bytes:10_000.0;
  stat_reply platform ~switch:4 ~flow:2 ~bytes:100.0;
  drain engine;
  (match Kandoo.elephants platform with
  | [ (1, 3, rate) ] -> Alcotest.(check bool) "rate above threshold" true (rate > 500.0)
  | l -> Alcotest.failf "expected exactly flow 1, got %d entries" (List.length l));
  (* Local state is per switch; root is centralized. *)
  let l3 =
    Platform.find_owner platform ~app:Kandoo.local_app_name (Cell.cell Kandoo.dict_local "3")
  in
  let l4 =
    Platform.find_owner platform ~app:Kandoo.local_app_name (Cell.cell Kandoo.dict_local "4")
  in
  Alcotest.(check bool) "local bees distinct" true (l3 <> l4)

let suite =
  [
    ( "apps",
      [
        Alcotest.test_case "learning switch learns/floods" `Quick
          test_learning_switch_learns_and_floods;
        Alcotest.test_case "learning switch per-switch state" `Quick
          test_learning_switch_state_is_per_switch;
        Alcotest.test_case "nib graph ops" `Quick test_nib_graph_ops;
        Alcotest.test_case "nib query/reply" `Quick test_nib_query_reply;
        Alcotest.test_case "nib nodes shard" `Quick test_nib_nodes_shard;
        Alcotest.test_case "netvirt forwarding+isolation" `Quick
          test_netvirt_forwarding_and_isolation;
        Alcotest.test_case "netvirt vnets shard" `Quick test_netvirt_vnets_shard;
        Alcotest.test_case "kandoo elephant detection" `Quick test_kandoo_elephant_detection;
      ] );
  ]

test/test_platform.ml: Alcotest App Array Beehive_core Beehive_net Cell Channels Context Engine Fun Gen Helpers Int List Mapping Message Option Platform Printf QCheck QCheck_alcotest String Value

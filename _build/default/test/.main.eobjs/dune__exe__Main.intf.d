test/main.mli:

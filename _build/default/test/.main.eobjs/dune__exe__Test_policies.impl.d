test/test_policies.ml: Alcotest Beehive_apps Beehive_core Beehive_harness Beehive_net Channels Engine Helpers Int List Option Platform Printf Simtime String Value

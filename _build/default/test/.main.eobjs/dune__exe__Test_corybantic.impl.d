test/test_corybantic.ml: Alcotest Beehive_apps Beehive_core Beehive_net Beehive_sim List Printf String

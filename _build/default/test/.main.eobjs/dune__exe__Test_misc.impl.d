test/test_misc.ml: Alcotest Beehive_core Beehive_net Beehive_sim Format List String

test/test_sim.ml: Alcotest Beehive_sim Fun List Option QCheck QCheck_alcotest

test/test_apps_te.ml: Alcotest Beehive_apps Beehive_core Beehive_harness Beehive_openflow Beehive_sim Fun Hashtbl Int List Option Printf String

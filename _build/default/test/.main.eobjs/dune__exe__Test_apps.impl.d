test/test_apps.ml: Alcotest Beehive_apps Beehive_core Beehive_net Beehive_openflow Beehive_sim Int List

test/helpers.ml: Alcotest Beehive_core Beehive_net Beehive_sim List Printf String

test/test_routing.ml: Alcotest Beehive_apps Beehive_core Beehive_net Beehive_sim Int Int32 List QCheck QCheck_alcotest String

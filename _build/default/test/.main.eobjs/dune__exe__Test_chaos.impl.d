test/test_chaos.ml: App Beehive_core Beehive_net Cell Channels Engine Gen Hashtbl Helpers List Option Platform Printf QCheck QCheck_alcotest Simtime

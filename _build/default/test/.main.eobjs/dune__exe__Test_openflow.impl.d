test/test_openflow.ml: Alcotest Array Beehive_core Beehive_net Beehive_openflow Beehive_sim List Option Printf

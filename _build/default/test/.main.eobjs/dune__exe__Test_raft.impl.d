test/test_raft.ml: Alcotest Array Beehive_raft Beehive_sim Fun Gen Hashtbl List Option Printf QCheck QCheck_alcotest

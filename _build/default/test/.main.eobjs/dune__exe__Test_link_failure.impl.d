test/test_link_failure.ml: Alcotest Beehive_apps Beehive_core Beehive_net Beehive_openflow Beehive_sim List Option

test/test_raft_replication.ml: Alcotest App Beehive_core Beehive_net Channels Engine Helpers List Option Platform Simtime Value

test/test_ensemble.ml: Alcotest Array Beehive_apps Beehive_core Beehive_net Beehive_openflow Beehive_sim Int List Option Printf String

test/test_trace.ml: Alcotest App Beehive_core Buffer Channels Context Engine Format Helpers List Mapping Platform String

test/test_cell_registry.ml: Alcotest Beehive_core Gen List QCheck QCheck_alcotest

test/test_locksvc.ml: Alcotest Array Beehive_locksvc Beehive_sim Hashtbl List QCheck QCheck_alcotest

test/test_l2_fabrics.ml: Alcotest Beehive_apps Beehive_core Beehive_net Beehive_sim Int Int64 List Option Printf

test/test_state.ml: Alcotest Beehive_core Hashtbl List QCheck QCheck_alcotest

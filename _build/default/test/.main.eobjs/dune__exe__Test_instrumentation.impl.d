test/test_instrumentation.ml: Alcotest Beehive_core Engine Helpers List Option Platform Printf Simtime

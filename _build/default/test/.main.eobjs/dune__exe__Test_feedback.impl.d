test/test_feedback.ml: Alcotest App Beehive_core Channels Context Helpers List Mapping Platform Printf

test/test_net.ml: Alcotest Array Beehive_net Beehive_sim Int List QCheck QCheck_alcotest

test/test_harness.ml: Alcotest Array Beehive_core Beehive_harness Beehive_net Beehive_openflow Beehive_sim Buffer Format List

(* Network substrate: topology, flows, traffic matrix, series, channels. *)

module Topology = Beehive_net.Topology
module Flow = Beehive_net.Flow
module Traffic_matrix = Beehive_net.Traffic_matrix
module Series = Beehive_net.Series
module Channels = Beehive_net.Channels
module Simtime = Beehive_sim.Simtime
module Rng = Beehive_sim.Rng

let test_tree_structure () =
  let t = Topology.tree ~arity:2 ~n_switches:7 in
  Alcotest.(check int) "n" 7 (Topology.n_switches t);
  Alcotest.(check (option int)) "root has no parent" None (Topology.parent t 0);
  Alcotest.(check (list int)) "root children" [ 1; 2 ] (Topology.children t 0);
  Alcotest.(check (list int)) "node 1 children" [ 3; 4 ] (Topology.children t 1);
  Alcotest.(check int) "depth of 6" 2 (Topology.depth t 6);
  Alcotest.(check (list int)) "neighbors of 1" [ 0; 3; 4 ] (Topology.neighbors t 1)

let test_tree_path () =
  let t = Topology.tree ~arity:2 ~n_switches:15 in
  Alcotest.(check (list int)) "same node" [ 5 ] (Topology.path t 5 5);
  Alcotest.(check (list int)) "to ancestor" [ 7; 3; 1 ] (Topology.path t 7 1);
  Alcotest.(check (list int)) "from ancestor" [ 1; 3; 7 ] (Topology.path t 1 7);
  Alcotest.(check (list int)) "across root" [ 7; 3; 1; 0; 2; 5; 11 ] (Topology.path t 7 11)

let prop_path_valid =
  QCheck.Test.make ~name:"tree path connects endpoints via links" ~count:300
    QCheck.(pair (int_bound 99) (int_bound 99))
    (fun (a, b) ->
      let t = Topology.tree ~arity:3 ~n_switches:100 in
      let p = Topology.path t a b in
      match p with
      | [] -> false
      | first :: _ ->
        let last = List.nth p (List.length p - 1) in
        first = a && last = b
        && (let rec adjacent = function
              | x :: (y :: _ as rest) -> Topology.is_link t x y && adjacent rest
              | [ _ ] | [] -> true
            in
            adjacent p)
        && List.length (List.sort_uniq Int.compare p) = List.length p)

let test_ports () =
  let t = Topology.tree ~arity:2 ~n_switches:7 in
  let port = Topology.port_towards t ~src:1 ~dst:0 in
  Alcotest.(check int) "parent is port 1" 1 port;
  Alcotest.(check int) "first child port" 2 (Topology.port_towards t ~src:1 ~dst:3);
  Alcotest.check_raises "not adjacent" Not_found (fun () ->
      ignore (Topology.port_towards t ~src:3 ~dst:4))

let test_hosts () =
  let t = Topology.tree ~arity:2 ~n_switches:3 in
  let hosts = Topology.attach_hosts t ~per_switch:2 in
  Alcotest.(check int) "count" 6 (Array.length hosts);
  Alcotest.(check int) "attachment" 1 hosts.(2).Topology.attached_to;
  Alcotest.(check bool) "macs unique" true
    (let macs = Array.to_list (Array.map (fun h -> h.Topology.mac) hosts) in
     List.length (List.sort_uniq compare macs) = 6)

let test_flow_generation () =
  let rng = Rng.create 5 in
  let t = Topology.tree ~arity:2 ~n_switches:20 in
  let flows =
    Flow.generate rng t ~per_switch:10 ~hot_fraction:0.2 ~base_rate:100.0 ~hot_rate:1000.0 ()
  in
  Alcotest.(check int) "count" 200 (Array.length flows);
  let hot = Array.to_list flows |> List.filter (Flow.is_hot ~threshold:500.0) in
  Alcotest.(check int) "hot count" 40 (List.length hot);
  Array.iter
    (fun (f : Flow.t) ->
      if f.Flow.src_switch = f.Flow.dst_switch then Alcotest.fail "self flow";
      match f.Flow.current_path with
      | first :: _ ->
        if first <> f.Flow.src_switch then Alcotest.fail "path does not start at src"
      | [] -> Alcotest.fail "empty path")
    flows

let test_flow_stat_bytes () =
  let rng = Rng.create 5 in
  let t = Topology.tree ~arity:2 ~n_switches:4 in
  let flows =
    Flow.generate rng t ~per_switch:1 ~hot_fraction:0.0 ~base_rate:1000.0 ~hot_rate:0.0
      ~start_spread:0.0 ()
  in
  let f = flows.(0) in
  Alcotest.(check (float 0.01)) "bytes at 2s" 2000.0 (Flow.stat_bytes f ~at:(Simtime.of_sec 2.0));
  let late = { f with Flow.starts_at = 5.0 } in
  Alcotest.(check (float 0.01)) "0 before start" 0.0 (Flow.stat_bytes late ~at:(Simtime.of_sec 2.0));
  Alcotest.(check (float 0.01)) "counts from start" 3000.0
    (Flow.stat_bytes late ~at:(Simtime.of_sec 8.0))

let test_matrix_accounting () =
  let m = Traffic_matrix.create 4 in
  Traffic_matrix.add m ~src:0 ~dst:1 ~bytes:100;
  Traffic_matrix.add m ~src:0 ~dst:1 ~bytes:50;
  Traffic_matrix.add m ~src:2 ~dst:2 ~bytes:850;
  Alcotest.(check int) "messages" 2 (Traffic_matrix.messages m ~src:0 ~dst:1);
  Alcotest.(check (float 0.01)) "bytes" 150.0 (Traffic_matrix.bytes m ~src:0 ~dst:1);
  Alcotest.(check (float 0.001)) "locality" 0.85 (Traffic_matrix.locality_fraction m);
  Alcotest.(check (float 0.01)) "total" 1000.0 (Traffic_matrix.total_bytes m);
  Alcotest.(check int) "hotspot" 2 (Traffic_matrix.hotspot_hive m)

let test_matrix_merge_reset () =
  let a = Traffic_matrix.create 2 and b = Traffic_matrix.create 2 in
  Traffic_matrix.add a ~src:0 ~dst:1 ~bytes:10;
  Traffic_matrix.add b ~src:0 ~dst:1 ~bytes:5;
  Traffic_matrix.merge_into ~dst:a b;
  Alcotest.(check (float 0.01)) "merged" 15.0 (Traffic_matrix.bytes a ~src:0 ~dst:1);
  Traffic_matrix.reset a;
  Alcotest.(check (float 0.01)) "reset" 0.0 (Traffic_matrix.total_bytes a)

let prop_matrix_conservation =
  QCheck.Test.make ~name:"matrix total equals sum of rows" ~count:100
    QCheck.(list (triple (int_bound 7) (int_bound 7) (int_bound 1000)))
    (fun adds ->
      let m = Traffic_matrix.create 8 in
      List.iter (fun (s, d, b) -> Traffic_matrix.add m ~src:s ~dst:d ~bytes:b) adds;
      let rows = List.init 8 (fun i -> Traffic_matrix.row_bytes m i) in
      abs_float (List.fold_left ( +. ) 0.0 rows -. Traffic_matrix.total_bytes m) < 1e-6)

let test_series () =
  let s = Series.create ~bucket:(Simtime.of_sec 1.0) in
  Series.add s ~at:(Simtime.of_sec 0.5) 1024.0;
  Series.add s ~at:(Simtime.of_sec 0.7) 1024.0;
  Series.add s ~at:(Simtime.of_sec 2.5) 512.0;
  let buckets = Series.buckets s in
  Alcotest.(check int) "3 buckets" 3 (Array.length buckets);
  Alcotest.(check (float 0.01)) "bucket 0" 2048.0 (snd buckets.(0));
  Alcotest.(check (float 0.01)) "bucket 1 empty" 0.0 (snd buckets.(1));
  let rates = Series.rate_kbps s in
  Alcotest.(check (float 0.01)) "kbps" 2.0 (snd rates.(0));
  Alcotest.(check (float 0.01)) "peak" 2048.0 (Series.peak s);
  Alcotest.(check (float 0.01)) "total" 2560.0 (Series.total s)

let test_channels_accounting () =
  let c = Channels.create ~n_hives:3 Channels.default_config in
  Channels.assign_switch c ~switch:7 ~hive:1;
  Alcotest.(check int) "master" 1 (Channels.master_of c 7);
  (* remote hive-to-hive: matrix + series *)
  let lat = Channels.transfer c ~src:(Channels.Hive 0) ~dst:(Channels.Hive 2) ~bytes:1000 ~now:Simtime.zero in
  Alcotest.(check bool) "remote latency > local" true
    Simtime.(lat > Channels.default_config.Channels.local_latency);
  Alcotest.(check (float 0.01)) "matrix" 1000.0
    (Traffic_matrix.bytes (Channels.matrix c) ~src:0 ~dst:2);
  (* same hive: diagonal only, no series *)
  ignore (Channels.transfer c ~src:(Channels.Hive 1) ~dst:(Channels.Hive 1) ~bytes:500 ~now:Simtime.zero);
  Alcotest.(check (float 0.01)) "diagonal" 500.0
    (Traffic_matrix.bytes (Channels.matrix c) ~src:1 ~dst:1);
  Alcotest.(check (float 0.01)) "series only remote" 1000.0 (Series.total (Channels.bandwidth c));
  (* switch to its master: switch bytes, not matrix *)
  ignore (Channels.transfer c ~src:(Channels.Switch 7) ~dst:(Channels.Hive 1) ~bytes:200 ~now:Simtime.zero);
  Alcotest.(check (float 0.01)) "switch bytes" 200.0 (Channels.switch_bytes c);
  Alcotest.(check (float 0.01)) "matrix unchanged" 1500.0
    (Traffic_matrix.total_bytes (Channels.matrix c));
  (* switch to a remote hive crosses the inter-hive channel *)
  ignore (Channels.transfer c ~src:(Channels.Switch 7) ~dst:(Channels.Hive 0) ~bytes:300 ~now:Simtime.zero);
  Alcotest.(check (float 0.01)) "switch remote in matrix" 300.0
    (Traffic_matrix.bytes (Channels.matrix c) ~src:1 ~dst:0);
  Channels.reset_accounting c;
  Alcotest.(check (float 0.01)) "reset" 0.0 (Traffic_matrix.total_bytes (Channels.matrix c))

let suite =
  [
    ( "net",
      [
        Alcotest.test_case "tree structure" `Quick test_tree_structure;
        Alcotest.test_case "tree paths" `Quick test_tree_path;
        QCheck_alcotest.to_alcotest prop_path_valid;
        Alcotest.test_case "ports" `Quick test_ports;
        Alcotest.test_case "hosts" `Quick test_hosts;
        Alcotest.test_case "flow generation" `Quick test_flow_generation;
        Alcotest.test_case "flow stat bytes" `Quick test_flow_stat_bytes;
        Alcotest.test_case "matrix accounting" `Quick test_matrix_accounting;
        Alcotest.test_case "matrix merge/reset" `Quick test_matrix_merge_reset;
        QCheck_alcotest.to_alcotest prop_matrix_conservation;
        Alcotest.test_case "series buckets" `Quick test_series;
        Alcotest.test_case "channel accounting" `Quick test_channels_accounting;
      ] );
  ]

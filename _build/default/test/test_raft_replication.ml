(* Consensus-backed state replication wired into the platform. *)

open Helpers
module Raft_replication = Beehive_core.Raft_replication

let replicated_kv () = { (kv_app ()) with App.replicated = true }

let setup () =
  let engine = Engine.create () in
  let platform = Platform.create engine (Platform.default_config ~n_hives:5) in
  Platform.register_app platform (replicated_kv ());
  let rep = Raft_replication.install platform () in
  Platform.start platform;
  (engine, platform, rep)

let run_for engine secs =
  Engine.run_until engine (Simtime.add (Engine.now engine) (Simtime.of_sec secs))

let test_groups_formed () =
  let _, _, rep = setup () in
  Alcotest.(check int) "group size" 3 (Raft_replication.group_size rep);
  Alcotest.(check (list int)) "members of group 3" [ 3; 4; 0 ]
    (Raft_replication.group_members rep ~hive:3)

let test_commits_replicate_through_raft () =
  let engine, platform, rep = setup () in
  run_for engine 2.0;  (* let leaders elect *)
  put platform ~from:1 ~key:"k" ~value:20;
  put platform ~from:1 ~key:"k" ~value:22;
  run_for engine 3.0;
  Alcotest.(check int) "both write sets committed" 2
    (Raft_replication.replicated_commands rep);
  Alcotest.(check int) "queue drained" 0 (Raft_replication.pending_commands rep);
  let bee = owner_exn platform ~app:"test.kv" "k" in
  (* Every member of the bee's group holds the replica. *)
  List.iter
    (fun member ->
      let entries = Raft_replication.replica_entries rep ~member ~bee in
      match entries with
      | [ ("store", "k", Value.V_int 42) ] -> ()
      | _ -> Alcotest.failf "member %d replica wrong (%d entries)" member (List.length entries))
    (Raft_replication.group_members rep ~hive:1)

let test_failover_from_raft_replica () =
  let engine, platform, rep = setup () in
  run_for engine 2.0;
  put platform ~from:1 ~key:"k" ~value:21;
  put platform ~from:1 ~key:"k" ~value:21;
  run_for engine 3.0;
  let bee = owner_exn platform ~app:"test.kv" "k" in
  Platform.fail_hive platform 1;
  let view = Option.get (Platform.bee_view platform bee) in
  Alcotest.(check bool) "alive elsewhere" true
    (view.Platform.view_alive && view.Platform.view_hive <> 1);
  Alcotest.(check (option int)) "state recovered via consensus replicas" (Some 42)
    (store_value platform ~bee ~key:"k");
  (* The survivor keeps replicating on the remaining group majority. *)
  run_for engine 2.0;
  put platform ~from:0 ~key:"k" ~value:8;
  run_for engine 3.0;
  Alcotest.(check (option int)) "still serving" (Some 50) (store_value platform ~bee ~key:"k");
  Alcotest.(check bool) "later commits replicated too" true
    (Raft_replication.replicated_commands rep >= 3)

let test_raft_traffic_is_charged () =
  let engine, platform, _rep = setup () in
  run_for engine 3.0;
  let matrix = Channels.matrix (Platform.channels platform) in
  (* Heartbeats alone must show up between group members. *)
  Alcotest.(check bool) "consensus traffic on the control channel" true
    (Beehive_net.Traffic_matrix.off_diagonal_bytes matrix > 1000.0)

let test_group_leaders_elected () =
  let engine, _, rep = setup () in
  run_for engine 3.0;
  for h = 0 to 4 do
    match Raft_replication.group_leader rep ~hive:h with
    | Some l ->
      if not (List.mem l (Raft_replication.group_members rep ~hive:h)) then
        Alcotest.failf "group %d leader %d not a member" h l
    | None -> Alcotest.failf "group %d has no leader" h
  done

let suite =
  [
    ( "raft_replication",
      [
        Alcotest.test_case "groups formed" `Quick test_groups_formed;
        Alcotest.test_case "commits replicate through raft" `Quick
          test_commits_replicate_through_raft;
        Alcotest.test_case "failover from raft replica" `Quick test_failover_from_raft_replica;
        Alcotest.test_case "raft traffic charged" `Quick test_raft_traffic_is_charged;
        Alcotest.test_case "group leaders elected" `Quick test_group_leaders_elected;
      ] );
  ]

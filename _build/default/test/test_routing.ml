(* LPM trie properties and the distributed routing application. *)

module Engine = Beehive_sim.Engine
module Simtime = Beehive_sim.Simtime
module Channels = Beehive_net.Channels
module Platform = Beehive_core.Platform
module Lpm = Beehive_apps.Lpm_trie
module Routing = Beehive_apps.Routing

(* --- trie ------------------------------------------------------------- *)

let test_prefix_parsing () =
  let p = Lpm.prefix_of_string "10.0.0.0/8" in
  Alcotest.(check string) "roundtrip" "10.0.0.0/8" (Lpm.string_of_prefix p);
  let p = Lpm.prefix_of_string "192.168.13.37/24" in
  Alcotest.(check string) "normalized host bits" "192.168.13.0/24" (Lpm.string_of_prefix p);
  Alcotest.(check string) "addr roundtrip" "1.2.3.4"
    (Lpm.string_of_addr (Lpm.addr_of_string "1.2.3.4"));
  Alcotest.check_raises "bad octet" (Invalid_argument "Lpm_trie.addr_of_string: bad octet")
    (fun () -> ignore (Lpm.addr_of_string "1.2.3.300"))

let test_longest_match () =
  let t =
    Lpm.empty
    |> fun t -> Lpm.insert t (Lpm.prefix_of_string "10.0.0.0/8") "eight"
    |> fun t -> Lpm.insert t (Lpm.prefix_of_string "10.1.0.0/16") "sixteen"
    |> fun t -> Lpm.insert t (Lpm.prefix_of_string "10.1.2.0/24") "twentyfour"
    |> fun t -> Lpm.insert t (Lpm.prefix_of_string "0.0.0.0/0") "default"
  in
  let look a =
    match Lpm.lookup t (Lpm.addr_of_string a) with
    | Some (_, v) -> v
    | None -> "none"
  in
  Alcotest.(check string) "most specific" "twentyfour" (look "10.1.2.3");
  Alcotest.(check string) "mid" "sixteen" (look "10.1.9.1");
  Alcotest.(check string) "coarse" "eight" (look "10.200.0.1");
  Alcotest.(check string) "default" "default" (look "99.99.99.99")

let test_remove () =
  let p24 = Lpm.prefix_of_string "10.1.2.0/24" in
  let t = Lpm.insert (Lpm.insert Lpm.empty (Lpm.prefix_of_string "10.0.0.0/8") 8) p24 24 in
  Alcotest.(check int) "cardinal" 2 (Lpm.cardinal t);
  let t = Lpm.remove t p24 in
  Alcotest.(check (option int)) "exact gone" None (Lpm.find_exact t p24);
  (match Lpm.lookup t (Lpm.addr_of_string "10.1.2.3") with
  | Some (_, 8) -> ()
  | _ -> Alcotest.fail "falls back to /8");
  let t = Lpm.remove t (Lpm.prefix_of_string "10.0.0.0/8") in
  Alcotest.(check bool) "empty" true (Lpm.is_empty t)

let prefix_gen =
  QCheck.Gen.(
    map2
      (fun addr len -> Lpm.normalize (Int32.of_int addr) len)
      (int_bound 0xFFFFFF) (int_range 4 28))

let arb_prefixes =
  QCheck.make
    ~print:(fun ps -> String.concat ";" (List.map Lpm.string_of_prefix ps))
    QCheck.Gen.(list_size (1 -- 30) prefix_gen)

let prop_lookup_matches_reference =
  QCheck.Test.make ~name:"trie lookup equals brute-force longest match" ~count:200 arb_prefixes
    (fun prefixes ->
      let t = List.fold_left (fun t p -> Lpm.insert t p (Lpm.string_of_prefix p)) Lpm.empty prefixes in
      let addrs = List.map (fun (p : Lpm.prefix) -> p.Lpm.p_addr) prefixes in
      List.for_all
        (fun addr ->
          let reference =
            List.filter (fun p -> Lpm.prefix_matches p addr) prefixes
            |> List.sort (fun (a : Lpm.prefix) b -> compare b.Lpm.p_len a.Lpm.p_len)
            |> function
            | [] -> None
            | best :: _ -> Some best.Lpm.p_len
          in
          match (Lpm.lookup t addr, reference) with
          | None, None -> true
          | Some (p, _), Some len -> p.Lpm.p_len = len
          | _ -> false)
        addrs)

let prop_insert_remove_roundtrip =
  QCheck.Test.make ~name:"insert then remove restores lookups" ~count:200
    (QCheck.pair arb_prefixes (QCheck.make prefix_gen))
    (fun (prefixes, extra) ->
      QCheck.assume (not (List.mem extra prefixes));
      let t = List.fold_left (fun t p -> Lpm.insert t p 0) Lpm.empty prefixes in
      let t2 = Lpm.remove (Lpm.insert t extra 1) extra in
      List.for_all
        (fun (p : Lpm.prefix) -> Lpm.lookup t p.Lpm.p_addr = Lpm.lookup t2 p.Lpm.p_addr)
        prefixes
      && Lpm.cardinal t = Lpm.cardinal t2)

let prop_fold_ordered =
  QCheck.Test.make ~name:"fold visits every inserted prefix exactly once" ~count:200 arb_prefixes
    (fun prefixes ->
      let uniq = List.sort_uniq compare prefixes in
      let t = List.fold_left (fun t p -> Lpm.insert t p 0) Lpm.empty uniq in
      let visited = List.map fst (Lpm.to_list t) in
      List.sort compare visited = List.sort compare uniq)

(* --- routing app ------------------------------------------------------ *)

let setup () =
  let engine = Engine.create () in
  let platform = Platform.create engine (Platform.default_config ~n_hives:4) in
  Platform.register_app platform (Routing.app ());
  Platform.start platform;
  (engine, platform)

let drain engine = Engine.run_until engine (Simtime.add (Engine.now engine) (Simtime.of_sec 1.0))

let announce platform ~from ~prefix ~nh ~metric =
  Platform.inject platform ~from:(Channels.Hive from) ~kind:Routing.k_announce
    (Routing.Announce { an_prefix = prefix; an_route = { Routing.nh_switch = nh; metric } })

let test_announce_lookup () =
  let engine, platform = setup () in
  announce platform ~from:0 ~prefix:"10.0.0.0/8" ~nh:1 ~metric:10;
  announce platform ~from:1 ~prefix:"10.1.0.0/16" ~nh:2 ~metric:10;
  announce platform ~from:2 ~prefix:"0.0.0.0/0" ~nh:9 ~metric:100;
  drain engine;
  (match Routing.best_route platform ~addr:"10.1.2.3" with
  | Some (p, r) ->
    Alcotest.(check string) "longest" "10.1.0.0/16" p;
    Alcotest.(check int) "nh" 2 r.Routing.nh_switch
  | None -> Alcotest.fail "no route");
  (match Routing.best_route platform ~addr:"8.8.8.8" with
  | Some (p, r) ->
    Alcotest.(check string) "default shard answers" "0.0.0.0/0" p;
    Alcotest.(check int) "default nh" 9 r.Routing.nh_switch
  | None -> Alcotest.fail "default route missing")

let test_best_metric_and_withdraw () =
  let engine, platform = setup () in
  announce platform ~from:0 ~prefix:"10.0.0.0/8" ~nh:1 ~metric:10;
  announce platform ~from:0 ~prefix:"10.0.0.0/8" ~nh:2 ~metric:5;
  drain engine;
  (match Routing.best_route platform ~addr:"10.9.9.9" with
  | Some (_, r) -> Alcotest.(check int) "lowest metric wins" 2 r.Routing.nh_switch
  | None -> Alcotest.fail "no route");
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:Routing.k_withdraw
    (Routing.Withdraw { wd_prefix = "10.0.0.0/8"; wd_switch = 2 });
  drain engine;
  (match Routing.best_route platform ~addr:"10.9.9.9" with
  | Some (_, r) -> Alcotest.(check int) "fallback candidate" 1 r.Routing.nh_switch
  | None -> Alcotest.fail "route fully lost");
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:Routing.k_withdraw
    (Routing.Withdraw { wd_prefix = "10.0.0.0/8"; wd_switch = 1 });
  drain engine;
  Alcotest.(check bool) "withdrawn entirely" true
    (Routing.best_route platform ~addr:"10.9.9.9" = None)

let test_async_lookup_with_fallback () =
  let resolved = ref [] in
  let engine = Engine.create () in
  let platform = Platform.create engine (Platform.default_config ~n_hives:4) in
  Platform.register_app platform (Routing.app ());
  Platform.register_app platform
    (Beehive_core.App.create ~name:"test.resolve" ~dicts:[ "x" ]
       [
         Beehive_core.App.handler ~kind:Routing.k_resolved
           ~map:(fun _ -> Beehive_core.Mapping.Local)
           (fun _ msg ->
             match msg.Beehive_core.Message.payload with
             | Routing.Resolved { rs_token; rs_prefix; _ } -> resolved := (rs_token, rs_prefix) :: !resolved
             | _ -> ());
       ]);
  Platform.start platform;
  announce platform ~from:0 ~prefix:"10.1.0.0/16" ~nh:1 ~metric:1;
  announce platform ~from:0 ~prefix:"0.0.0.0/0" ~nh:2 ~metric:1;
  drain engine;
  let lookup addr token =
    Platform.inject platform ~from:(Channels.Hive 3) ~kind:Routing.k_lookup
      (Routing.Lookup { lk_addr = addr; lk_token = token; lk_fallback = false })
  in
  lookup "10.1.2.3" 1;  (* block shard hit *)
  lookup "77.1.1.1" 2;  (* block miss -> default shard hit *)
  drain engine;
  let sorted = List.sort compare !resolved in
  Alcotest.(check int) "two resolutions" 2 (List.length sorted);
  (match sorted with
  | [ (1, Some "10.1.0.0/16"); (2, Some "0.0.0.0/0") ] -> ()
  | _ -> Alcotest.fail "resolution contents");
  (* A total miss resolves to None after the fallback hop. *)
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:Routing.k_withdraw
    (Routing.Withdraw { wd_prefix = "0.0.0.0/0"; wd_switch = 2 });
  drain engine;
  resolved := [];
  lookup "77.1.1.1" 3;
  drain engine;
  (match !resolved with
  | [ (3, None) ] -> ()
  | _ -> Alcotest.fail "miss should resolve to None")

let test_shards_distribute () =
  let engine, platform = setup () in
  List.iteri
    (fun i p -> announce platform ~from:(i mod 4) ~prefix:p ~nh:i ~metric:1)
    [ "10.0.0.0/8"; "20.0.0.0/8"; "30.0.0.0/8"; "40.0.0.0/8" ];
  drain engine;
  let sizes = Routing.shard_sizes platform in
  Alcotest.(check int) "four shards" 4 (List.length sizes);
  let owners =
    List.filter_map
      (fun (shard, _) ->
        Platform.find_owner platform ~app:Routing.app_name
          (Beehive_core.Cell.cell Routing.dict_rib shard))
      sizes
  in
  Alcotest.(check int) "distinct bees" 4 (List.length (List.sort_uniq Int.compare owners))

let suite =
  [
    ( "routing",
      [
        Alcotest.test_case "prefix parsing" `Quick test_prefix_parsing;
        Alcotest.test_case "longest match" `Quick test_longest_match;
        Alcotest.test_case "remove" `Quick test_remove;
        QCheck_alcotest.to_alcotest prop_lookup_matches_reference;
        QCheck_alcotest.to_alcotest prop_insert_remove_roundtrip;
        QCheck_alcotest.to_alcotest prop_fold_ordered;
        Alcotest.test_case "announce/lookup" `Quick test_announce_lookup;
        Alcotest.test_case "metric + withdraw" `Quick test_best_metric_and_withdraw;
        Alcotest.test_case "async lookup with fallback" `Quick test_async_lookup_with_fallback;
        Alcotest.test_case "shards distribute" `Quick test_shards_distribute;
      ] );
  ]

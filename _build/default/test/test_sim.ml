(* Simulation kernel: time arithmetic, RNG, event queue, engine. *)

module Simtime = Beehive_sim.Simtime
module Rng = Beehive_sim.Rng
module Event_queue = Beehive_sim.Event_queue
module Engine = Beehive_sim.Engine

let test_simtime_arith () =
  Alcotest.(check int) "of_ms" 2_000 (Simtime.to_us (Simtime.of_ms 2));
  Alcotest.(check int) "of_sec" 1_500_000 (Simtime.to_us (Simtime.of_sec 1.5));
  Alcotest.(check int) "add" 30 (Simtime.to_us (Simtime.add (Simtime.of_us 10) (Simtime.of_us 20)));
  Alcotest.(check int) "diff" 10 (Simtime.to_us (Simtime.diff (Simtime.of_us 30) (Simtime.of_us 20)));
  Alcotest.check_raises "negative" (Invalid_argument "Simtime.of_us: negative") (fun () ->
      ignore (Simtime.of_us (-1)));
  Alcotest.check_raises "diff negative" (Invalid_argument "Simtime.diff: negative result")
    (fun () -> ignore (Simtime.diff (Simtime.of_us 1) (Simtime.of_us 2)))

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let c = Rng.split a in
  (* Draws from the split stream must not equal the parent's next draws
     systematically. *)
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 10_000 do
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_event_queue_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q (Simtime.of_us 30) "c");
  ignore (Event_queue.push q (Simtime.of_us 10) "a");
  ignore (Event_queue.push q (Simtime.of_us 20) "b");
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "!" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ]

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    ignore (Event_queue.push q (Simtime.of_us 5) i)
  done;
  let order = List.init 10 (fun _ -> match Event_queue.pop q with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "insertion order at equal time" (List.init 10 Fun.id) order

let test_event_queue_cancel () =
  let q = Event_queue.create () in
  let h1 = Event_queue.push q (Simtime.of_us 1) "a" in
  let _h2 = Event_queue.push q (Simtime.of_us 2) "b" in
  Alcotest.(check bool) "cancel ok" true (Event_queue.cancel q h1);
  Alcotest.(check bool) "double cancel" false (Event_queue.cancel q h1);
  Alcotest.(check int) "one live" 1 (Event_queue.length q);
  (match Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check string) "skips cancelled" "b" v
  | None -> Alcotest.fail "empty");
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let prop_heap_sorted =
  QCheck.Test.make ~name:"event_queue pops in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.push q (Simtime.of_us t) t)) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (at, _) ->
          let t = Simtime.to_us at in
          t >= last && drain t
      in
      drain 0)

let test_engine_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule_at e (Simtime.of_us 10) (fun () -> log := 10 :: !log));
  ignore (Engine.schedule_at e (Simtime.of_us 30) (fun () -> log := 30 :: !log));
  Engine.run_until e (Simtime.of_us 20);
  Alcotest.(check (list int)) "only first fired" [ 10 ] !log;
  Alcotest.(check int) "clock at horizon" 20 (Simtime.to_us (Engine.now e));
  Engine.run_until e (Simtime.of_us 40);
  Alcotest.(check (list int)) "second fired" [ 30; 10 ] !log

let test_engine_periodic () =
  let e = Engine.create () in
  let count = ref 0 in
  let h = Engine.every e (Simtime.of_us 10) (fun () -> incr count) in
  Engine.run_until e (Simtime.of_us 55);
  Alcotest.(check int) "5 ticks" 5 !count;
  ignore (Engine.cancel e h);
  Engine.run_until e (Simtime.of_us 200);
  Alcotest.(check int) "no ticks after cancel" 5 !count

let test_engine_cancel_inside_tick () =
  let e = Engine.create () in
  let count = ref 0 in
  let h = ref None in
  h :=
    Some
      (Engine.every e (Simtime.of_us 10) (fun () ->
           incr count;
           if !count = 3 then ignore (Engine.cancel e (Option.get !h))));
  Engine.run_until e (Simtime.of_us 1000);
  Alcotest.(check int) "self-cancel stops series" 3 !count

let test_engine_past_raises () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e (Simtime.of_us 50) (fun () -> ()));
  Engine.run_until e (Simtime.of_us 100);
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: in the past")
    (fun () -> ignore (Engine.schedule_at e (Simtime.of_us 10) (fun () -> ())))

let suite =
  [
    ( "sim",
      [
        Alcotest.test_case "simtime arithmetic" `Quick test_simtime_arith;
        Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
        Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "event queue order" `Quick test_event_queue_order;
        Alcotest.test_case "event queue FIFO ties" `Quick test_event_queue_fifo_ties;
        Alcotest.test_case "event queue cancel" `Quick test_event_queue_cancel;
        QCheck_alcotest.to_alcotest prop_heap_sorted;
        Alcotest.test_case "engine run_until" `Quick test_engine_run_until;
        Alcotest.test_case "engine periodic timers" `Quick test_engine_periodic;
        Alcotest.test_case "engine cancel inside tick" `Quick test_engine_cancel_inside_tick;
        Alcotest.test_case "engine rejects past events" `Quick test_engine_past_raises;
      ] );
  ]

(* Traffic-engineering applications on a small simulated cluster. *)

module Scenario = Beehive_harness.Scenario
module Summary = Beehive_harness.Summary
module Platform = Beehive_core.Platform
module Cell = Beehive_core.Cell
module Simtime = Beehive_sim.Simtime
module Te_naive = Beehive_apps.Te_naive
module Te_decoupled = Beehive_apps.Te_decoupled

let tiny te =
  {
    Scenario.quick_config with
    Scenario.n_hives = 4;
    n_switches = 12;
    flows_per_switch = 10;
    hot_fraction = 0.2;
    flow_start_spread = 3.0;
    warmup = Simtime.of_sec 3.0;
    duration = Simtime.of_sec 6.0;
    te;
  }

let run te =
  let sc = Scenario.build (tiny te) in
  Scenario.run sc;
  sc

let te_bees platform app =
  List.filter
    (fun (v : Platform.bee_view) ->
      String.equal v.Platform.view_app app && not v.Platform.view_is_local)
    (Platform.live_bees platform)

let test_naive_centralizes () =
  let sc = run Scenario.Te_naive in
  let platform = Scenario.platform sc in
  let bees = te_bees platform Te_naive.app_name in
  Alcotest.(check int) "exactly one TE bee (merged)" 1 (List.length bees);
  let bee = List.hd bees in
  (* It owns every switch's stats cell plus the wildcards. *)
  Alcotest.(check bool) "owns the S wildcard" true
    (Cell.Set.mem (Cell.whole Te_naive.dict_stats) bee.Platform.view_cells);
  let owner sw =
    Platform.find_owner platform ~app:Te_naive.app_name
      (Cell.cell Te_naive.dict_stats (string_of_int sw))
  in
  for sw = 0 to 11 do
    Alcotest.(check (option int)) (Printf.sprintf "S[%d]" sw) (Some bee.Platform.view_id) (owner sw)
  done;
  (* And it re-routed hot flows. *)
  let s = Summary.of_scenario sc in
  Alcotest.(check bool) "hot traffic matrix concentrated" true (s.Summary.s_hotspot_share > 0.5)

let test_naive_reroutes_hot_flows () =
  let sc = run Scenario.Te_naive in
  let platform = Scenario.platform sc in
  let bees = te_bees platform Te_naive.app_name in
  let bee = (List.hd bees).Platform.view_id in
  (* Count handled observations in the TE state. *)
  let handled = ref 0 and total = ref 0 in
  List.iter
    (fun (dict, _, v) ->
      if String.equal dict Te_naive.dict_stats then
        match v with
        | Beehive_apps.Te_common.V_obs obs ->
          List.iter
            (fun (o : Beehive_apps.Te_common.flow_obs) ->
              incr total;
              if o.Beehive_apps.Te_common.fo_handled then incr handled)
            obs
        | _ -> ())
    (Platform.bee_state_entries platform bee);
  Alcotest.(check int) "all flows observed" 120 !total;
  Alcotest.(check bool) "some hot flows handled" true (!handled > 0);
  Alcotest.(check bool) "but not all flows" true (!handled < !total)

let test_decoupled_shards () =
  let sc = run Scenario.Te_decoupled in
  let platform = Scenario.platform sc in
  let bees = te_bees platform Te_decoupled.app_name in
  (* One bee per switch for stats, plus one centralized Route bee. *)
  Alcotest.(check bool) "many bees" true (List.length bees >= 12);
  let stats_owner sw =
    Platform.find_owner platform ~app:Te_decoupled.app_name
      (Cell.cell Te_decoupled.dict_stats (string_of_int sw))
  in
  let owners = List.filter_map stats_owner (List.init 12 Fun.id) in
  Alcotest.(check int) "stats owners are distinct" 12
    (List.length (List.sort_uniq Int.compare owners));
  (* Stats bees sit on their switch's master hive. *)
  List.iteri
    (fun sw bee ->
      let v = Option.get (Platform.bee_view platform bee) in
      Alcotest.(check int)
        (Printf.sprintf "S[%d] local to master" sw)
        (Scenario.master_of_switch sc sw)
        v.Platform.view_hive)
    owners;
  (* Route is centralized: one bee owns the routing wildcard. *)
  (match Platform.find_owner platform ~app:Te_decoupled.app_name (Cell.whole Te_decoupled.dict_route) with
  | Some _ -> ()
  | None -> Alcotest.fail "no Route bee");
  Alcotest.(check bool) "reroutes recorded" true (Te_decoupled.rerouted_count platform > 0)

let test_decoupled_locality_beats_naive () =
  let naive = Summary.of_scenario (run Scenario.Te_naive) in
  let dec = Summary.of_scenario (run Scenario.Te_decoupled) in
  Alcotest.(check bool) "decoupled more local" true
    (dec.Summary.s_locality > naive.Summary.s_locality);
  Alcotest.(check bool) "decoupled cheaper" true
    (dec.Summary.s_mean_kbps < naive.Summary.s_mean_kbps)

let test_bfs_path () =
  let adj = Hashtbl.create 8 in
  Hashtbl.replace adj 0 [ 1; 2 ];
  Hashtbl.replace adj 1 [ 0; 3 ];
  Hashtbl.replace adj 2 [ 0 ];
  Hashtbl.replace adj 3 [ 1 ];
  (match Beehive_apps.Te_common.bfs_path adj ~src:2 ~dst:3 with
  | Some p -> Alcotest.(check (list int)) "shortest path" [ 2; 0; 1; 3 ] p
  | None -> Alcotest.fail "path exists");
  Alcotest.(check bool) "unknown node" true
    (Beehive_apps.Te_common.bfs_path adj ~src:2 ~dst:9 = None);
  match Beehive_apps.Te_common.bfs_path adj ~src:1 ~dst:1 with
  | Some [ 1 ] -> ()
  | _ -> Alcotest.fail "self path"

let test_collect_stats_rates () =
  let open Beehive_apps.Te_common in
  let stat ~flow ~bytes =
    { Beehive_openflow.Wire.fs_flow = flow; fs_src_sw = 0; fs_dst_sw = 1; fs_bytes = bytes;
      fs_packets = 0; fs_duration_sec = 0.0 }
  in
  let obs1 = collect_stats ~now:1.0 ~prev:[] [ stat ~flow:7 ~bytes:1000.0 ] in
  Alcotest.(check int) "one obs" 1 (List.length obs1);
  Alcotest.(check (float 0.01)) "no rate on first sample" 0.0 (List.hd obs1).fo_rate;
  let obs2 = collect_stats ~now:3.0 ~prev:obs1 [ stat ~flow:7 ~bytes:5000.0 ] in
  Alcotest.(check (float 0.01)) "rate = delta/dt" 2000.0 (List.hd obs2).fo_rate;
  let hot = hot_flows ~delta:1000.0 obs2 in
  Alcotest.(check int) "hot" 1 (List.length hot);
  let marked = mark_handled obs2 [ 7 ] in
  Alcotest.(check int) "handled flows not hot again" 0
    (List.length (hot_flows ~delta:1000.0 marked))

let suite =
  [
    ( "apps.te",
      [
        Alcotest.test_case "naive TE centralizes onto one bee" `Slow test_naive_centralizes;
        Alcotest.test_case "naive TE reroutes hot flows" `Slow test_naive_reroutes_hot_flows;
        Alcotest.test_case "decoupled TE shards per switch" `Slow test_decoupled_shards;
        Alcotest.test_case "decoupled beats naive on locality" `Slow
          test_decoupled_locality_beats_naive;
        Alcotest.test_case "bfs path" `Quick test_bfs_path;
        Alcotest.test_case "collect_stats rates" `Quick test_collect_stats_rates;
      ] );
  ]

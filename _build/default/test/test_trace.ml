(* Message provenance/causation traces. *)

open Helpers
module Trace = Beehive_core.Trace

(* ping -> pong -> pang: a three-stage causal chain. *)
let chain_app =
  App.create ~name:"test.chain" ~dicts:[ "store" ]
    [
      App.handler ~kind:"test.ping"
        ~map:(fun _ -> Mapping.with_key "store" "x")
        (fun ctx _ -> Context.emit ctx ~kind:"test.pong" (Noop 1));
      App.handler ~kind:"test.pong"
        ~map:(fun _ -> Mapping.with_key "store" "x")
        (fun ctx _ ->
          Context.emit ctx ~kind:"test.pang" (Noop 2);
          Context.emit ctx ~kind:"test.pang" (Noop 3));
      App.handler ~kind:"test.pang"
        ~map:(fun _ -> Mapping.with_key "store" "x")
        (fun _ _ -> ());
    ]

let setup () =
  let engine = Engine.create () in
  let platform = Platform.create engine (Platform.default_config ~n_hives:2) in
  Platform.register_app platform chain_app;
  let trace = Trace.attach platform () in
  Platform.start platform;
  (engine, platform, trace)

let find_by_kind trace kind =
  List.filter (fun ev -> ev.Trace.ev_kind = kind) (Trace.events trace)

let test_chain_recorded () =
  let engine, platform, trace = setup () in
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:"test.ping" (Noop 0);
  drain engine;
  let pangs = find_by_kind trace "test.pang" in
  Alcotest.(check int) "two pangs" 2 (List.length pangs);
  let chain = Trace.chain trace (List.hd pangs).Trace.ev_msg in
  Alcotest.(check (list string)) "root-first causal chain"
    [ "test.ping"; "test.pong"; "test.pang" ]
    (List.map (fun e -> e.Trace.ev_kind) chain);
  (* The root is the injected message (no emitter). *)
  (match chain with
  | root :: _ ->
    Alcotest.(check bool) "root injected" true (root.Trace.ev_emitter = None);
    Alcotest.(check bool) "root has no parent" true (root.Trace.ev_parent = None)
  | [] -> Alcotest.fail "empty chain");
  (* children of the pong are the two pangs. *)
  let pong = List.hd (find_by_kind trace "test.pong") in
  Alcotest.(check int) "pong caused two" 2 (List.length (Trace.children trace pong.Trace.ev_msg))

let test_causation_ratio () =
  let engine, platform, trace = setup () in
  for _ = 1 to 5 do
    Platform.inject platform ~from:(Channels.Hive 0) ~kind:"test.ping" (Noop 0)
  done;
  drain engine;
  Alcotest.(check (option (float 0.001))) "1 pong per ping" (Some 1.0)
    (Trace.causation_ratio trace ~in_kind:"test.ping" ~out_kind:"test.pong");
  Alcotest.(check (option (float 0.001))) "2 pangs per pong" (Some 2.0)
    (Trace.causation_ratio trace ~in_kind:"test.pong" ~out_kind:"test.pang");
  Alcotest.(check (option (float 0.001))) "no pang from ping directly" (Some 0.0)
    (Trace.causation_ratio trace ~in_kind:"test.ping" ~out_kind:"test.pang");
  Alcotest.(check bool) "unknown kind" true
    (Trace.causation_ratio trace ~in_kind:"nope" ~out_kind:"test.pong" = None)

let test_ring_eviction () =
  let engine = Engine.create () in
  let platform = Platform.create engine (Platform.default_config ~n_hives:2) in
  Platform.register_app platform chain_app;
  let trace = Trace.attach platform ~capacity:10 () in
  Platform.start platform;
  for _ = 1 to 20 do
    Platform.inject platform ~from:(Channels.Hive 0) ~kind:"test.ping" (Noop 0)
  done;
  drain engine;
  Alcotest.(check bool) "bounded" true (Trace.recorded trace <= 10);
  (* Old roots evicted: a late pang's chain is truncated but intact. *)
  let pangs = find_by_kind trace "test.pang" in
  Alcotest.(check bool) "recent events survive" true (pangs <> [])

let test_render_tree () =
  let engine, platform, trace = setup () in
  Platform.inject platform ~from:(Channels.Hive 0) ~kind:"test.ping" (Noop 0);
  drain engine;
  let root = List.hd (find_by_kind trace "test.ping") in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Trace.render_tree trace fmt root.Trace.ev_msg;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions all kinds" true
    (List.for_all contains [ "test.ping"; "test.pong"; "test.pang" ])

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "causal chain recorded" `Quick test_chain_recorded;
        Alcotest.test_case "causation ratios" `Quick test_causation_ratio;
        Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
        Alcotest.test_case "render tree" `Quick test_render_tree;
      ] );
  ]

(* Command-line driver for the Beehive experiments.

   Subcommands regenerate the paper's Figure 4 panels individually or all
   together, with every scenario parameter exposed as a flag. *)

module Scenario = Beehive_harness.Scenario
module Fig4 = Beehive_harness.Fig4
module Summary = Beehive_harness.Summary
module Simtime = Beehive_sim.Simtime
open Cmdliner

let cfg_term =
  let docs = "SCENARIO PARAMETERS" in
  let hives =
    Arg.(value & opt int Scenario.default_config.Scenario.n_hives
         & info [ "hives" ] ~docs ~doc:"Number of hives (controllers).")
  in
  let switches =
    Arg.(value & opt int Scenario.default_config.Scenario.n_switches
         & info [ "switches" ] ~docs ~doc:"Number of switches.")
  in
  let arity =
    Arg.(value & opt int Scenario.default_config.Scenario.tree_arity
         & info [ "arity" ] ~docs ~doc:"Tree topology arity.")
  in
  let flows =
    Arg.(value & opt int Scenario.default_config.Scenario.flows_per_switch
         & info [ "flows" ] ~docs ~doc:"Fixed-rate flows per switch.")
  in
  let hot =
    Arg.(value & opt float Scenario.default_config.Scenario.hot_fraction
         & info [ "hot-fraction" ] ~docs ~doc:"Fraction of above-threshold flows.")
  in
  let duration =
    Arg.(value & opt float 60.0
         & info [ "duration" ] ~docs ~doc:"Measured window in simulated seconds.")
  in
  let seed =
    Arg.(value & opt int Scenario.default_config.Scenario.seed
         & info [ "seed" ] ~docs ~doc:"Deterministic simulation seed.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~docs
             ~doc:"Use the laptop-fast configuration (8 hives, 48 switches, 10 s).")
  in
  let make quick hives switches arity flows hot duration seed =
    let base = if quick then Scenario.quick_config else Scenario.default_config in
    let base =
      if quick then base
      else
        {
          base with
          Scenario.n_hives = hives;
          n_switches = switches;
          tree_arity = arity;
          flows_per_switch = flows;
          hot_fraction = hot;
          duration = Simtime.of_sec duration;
        }
    in
    { base with Scenario.seed }
  in
  Term.(const make $ quick $ hives $ switches $ arity $ flows $ hot $ duration $ seed)

let render_panel ~csv p =
  if csv then Format.printf "%a@." Fig4.render_csv p
  else Format.printf "%a@." Fig4.render p

let csv_flag =
  Arg.(value & flag
       & info [ "csv" ]
           ~doc:"Emit machine-readable series/matrix rows instead of the ASCII panels.")

let run_one name runner =
  let doc = Printf.sprintf "Regenerate %s of the paper's evaluation." name in
  let run cfg csv = render_panel ~csv (runner ~cfg ()) in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ cfg_term $ csv_flag)

let fig4_all =
  let doc = "Run all three Figure 4 experiments and the shape checks." in
  let run cfg =
    let naive, decoupled, optimized = Fig4.run_all ~cfg () in
    render_panel ~csv:false naive;
    render_panel ~csv:false decoupled;
    render_panel ~csv:false optimized;
    Format.printf "=== shape checks (paper's qualitative claims)@.%a@." Fig4.render_checks
      (Fig4.shape_checks ~naive ~decoupled ~optimized);
    let failed =
      List.filter (fun c -> not c.Fig4.c_passed) (Fig4.shape_checks ~naive ~decoupled ~optimized)
    in
    if failed <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fig4" ~doc)
    Term.(const run $ cfg_term)

let check_cmd =
  let module Check = Beehive_check.Check in
  let module Script = Beehive_check.Script in
  let doc =
    "Deterministic fault exploration: run the nemesis over a range of seeds, \
     checking invariants continuously; shrink and print any failing trace."
  in
  let docs = "CHECK PARAMETERS" in
  let seeds =
    Arg.(value & opt int 50
         & info [ "seeds" ] ~docs ~doc:"Number of consecutive seeds to explore.")
  in
  let first_seed =
    Arg.(value & opt int 0 & info [ "first-seed" ] ~docs ~doc:"First seed of the sweep.")
  in
  let ticks =
    Arg.(value & opt int 30
         & info [ "ticks" ] ~docs
             ~doc:"Fault-injection horizon per seed, in simulated milliseconds.")
  in
  let hives =
    Arg.(value & opt int 4 & info [ "hives" ] ~docs ~doc:"Hives per checked platform.")
  in
  let profile =
    let parse s =
      Result.map_error (fun e -> `Msg e) (Script.profile_of_string s)
    in
    let print ppf p = Format.pp_print_string ppf (Script.profile_to_string p) in
    Arg.(value
         & opt (list (conv (parse, print))) Script.all_profiles
         & info [ "profile" ] ~docs
             ~doc:"Fault profile(s): $(b,migration), $(b,durability), $(b,raft), \
                   $(b,partition), $(b,elastic), $(b,disk), $(b,all), or a \
                   comma-separated list. Default: every profile.")
  in
  let trace_dir =
    Arg.(value & opt (some string) None
         & info [ "trace-dir" ] ~docs
             ~doc:"Directory to write one shrunk failure trace per failing seed \
                   (created if missing); what the CI soak job uploads.")
  in
  let lin =
    Arg.(value & flag
         & info [ "lin" ] ~docs
             ~doc:"Also run the client-history linearizability workload on every \
                   seed: logical clients issue get/put/delete and transactional \
                   ops against a dictionary app while the nemesis runs, and the \
                   recorded history is checked at run end (monitor \
                   $(b,linearizability)); violations shrink to a minimal script \
                   plus a minimal sub-history.")
  in
  let outbox =
    Arg.(value & flag
         & info [ "outbox" ] ~docs
             ~doc:"Also run the transactional-outbox workload on every seed: \
                   puts enter through a forwarding app that journals them and \
                   re-emits them inside the same transaction, and the run is \
                   judged by the $(b,exactly-once) and \
                   $(b,quarantine-accounting) monitors on top of the usual \
                   invariants.")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docs
             ~doc:"Resize the domain pool to $(docv) and run every seed with \
                   sharded multicore dispatch. Results are required to be \
                   identical at every width, so re-running a sweep with a \
                   different $(b,--domains) doubles as an end-to-end \
                   determinism check.")
  in
  let inject_bug =
    Arg.(value & opt (some string) None
         & info [ "inject-bug" ] ~docs
             ~doc:"Deliberately re-introduce a historical bug before checking \
                   ($(b,forwarding) disables in-flight message forwarding after \
                   bee merges; $(b,dedup-off) disables the transport's \
                   receiver-side duplicate suppression; $(b,stale-read) makes \
                   freshly-migrated bees serve reads from their pre-transfer \
                   snapshot — only visible to $(b,--lin); $(b,lost-outbox) \
                   skips outbox replay on restart and $(b,replay-dup) wipes the \
                   durable inbox before replay — both only visible to \
                   $(b,--outbox); $(b,checksums-off) disables WAL/snapshot frame \
                   verification so injected disk damage is served as truth — \
                   only visible to $(b,--profile disk)). The sweep should then \
                   fail — a self-test of the checker.")
  in
  let run seeds first_seed ticks hives profiles trace_dir lin outbox domains
      inject_bug =
    (match inject_bug with
    | None -> ()
    | Some "forwarding" -> Beehive_core.Platform.debug_disable_forwarding := true
    | Some "dedup-off" -> Beehive_net.Transport.debug_disable_dedup := true
    | Some "stale-read" -> Beehive_core.Platform.debug_stale_reads := true
    | Some "lost-outbox" -> Beehive_core.Platform.debug_skip_outbox_replay := true
    | Some "replay-dup" -> Beehive_core.Platform.debug_forget_inbox := true
    | Some "checksums-off" -> Beehive_store.Store.debug_disable_checksums := true
    | Some other ->
      Format.eprintf
        "unknown --inject-bug %S (known: forwarding, dedup-off, stale-read, \
         lost-outbox, replay-dup, checksums-off)@."
        other;
      exit 2);
    let n_failures = ref 0 in
    List.iter
      (fun profile ->
        let report =
          Check.run ~n_hives:hives ~ticks ~lin ~outbox ?domains ~first_seed
            ~seeds profile
        in
        Format.printf "%a" Check.pp_report report;
        List.iter
          (fun f ->
            incr n_failures;
            match trace_dir with
            | None -> ()
            | Some dir ->
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              let path =
                Filename.concat dir
                  (Printf.sprintf "trace-%s-seed%d.txt"
                     (Script.profile_to_string profile)
                     f.Check.f_seed)
              in
              let oc = open_out path in
              output_string oc (Check.failure_to_string f);
              close_out oc;
              Format.printf "  trace written to %s@." path)
          report.Check.rp_failures)
      profiles;
    if !n_failures > 0 then exit 1
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ seeds $ first_seed $ ticks $ hives $ profile $ trace_dir
          $ lin $ outbox $ domains $ inject_bug)

let scale_cmd =
  let module E = Beehive_harness.Elastic_exp in
  let doc =
    "Elastic membership demo: join hives into a loaded cluster (busy share must \
     drop), then drain and decommission the busiest hive (the drain must complete \
     with zero cells)."
  in
  let docs = "SCALE PARAMETERS" in
  let hives =
    Arg.(value & opt int E.default_config.E.e_hives
         & info [ "hives" ] ~docs ~doc:"Initial cluster size.")
  in
  let joins =
    Arg.(value & opt int E.default_config.E.e_joins
         & info [ "joins" ] ~docs ~doc:"Hives to join before the second phase.")
  in
  let keys =
    Arg.(value & opt int E.default_config.E.e_keys
         & info [ "keys" ] ~docs ~doc:"Counter keys in the workload.")
  in
  let phase =
    Arg.(value & opt float 5.0
         & info [ "phase" ] ~docs ~doc:"Measured seconds per phase (simulated).")
  in
  let seed =
    Arg.(value & opt int E.default_config.E.e_seed
         & info [ "seed" ] ~docs ~doc:"Deterministic simulation seed.")
  in
  let run hives joins keys phase seed =
    let config =
      {
        E.default_config with
        E.e_hives = hives;
        e_joins = joins;
        e_keys = keys;
        e_phase = Simtime.of_sec phase;
        e_seed = seed;
      }
    in
    let report = E.run ~config () in
    Format.printf "%a@." E.render report;
    let checks = E.checks report in
    List.iter
      (fun (label, ok) ->
        Format.printf "%s %s@." (if ok then "[ok]  " else "[FAIL]") label)
      checks;
    if List.exists (fun (_, ok) -> not ok) checks then exit 1
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(const run $ hives $ joins $ keys $ phase $ seed)

let feedback_cmd =
  let doc = "Run the naive TE and print the design-bottleneck feedback (Section 5)." in
  let run cfg =
    let sc = Scenario.build { cfg with Scenario.te = Scenario.Te_naive } in
    Scenario.run sc;
    Format.printf "%a@." Beehive_core.Feedback.pp
      (Beehive_core.Feedback.analyze (Scenario.platform sc))
  in
  Cmd.v (Cmd.info "feedback" ~doc) Term.(const run $ cfg_term)

let main =
  let doc = "Beehive distributed SDN control platform — experiment runner" in
  let info = Cmd.info "beehive_sim" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      run_one "fig4a" (fun ~cfg () -> Fig4.run_naive ~cfg ());
      run_one "fig4b" (fun ~cfg () -> Fig4.run_decoupled ~cfg ());
      run_one "fig4c" (fun ~cfg () -> Fig4.run_optimized ~cfg ());
      fig4_all;
      feedback_cmd;
      check_cmd;
      scale_cmd;
    ]

let () = exit (Cmd.eval main)

(* Elastic scaling: grow and shrink a running control plane.

   The quickstart's key-sharded hit counter again — but this time the
   cluster changes size while it serves traffic:

   - a new hive joins at runtime ([Membership.add_hive]): channels,
     transport endpoints and the failure-detector quorum all widen, and
     the instrumentation optimizer's scale-out policy starts pulling the
     busiest bees onto the newcomer;
   - a hive is drained ([Membership.drain]): it stops accepting new
     cells, its bees are live-migrated out (counters intact — no state is
     lost), and once it owns nothing it is decommissioned for good.

   Run with: dune exec examples/elastic_scaling.exe *)

module Engine = Beehive_sim.Engine
module Simtime = Beehive_sim.Simtime
module Channels = Beehive_net.Channels
module Platform = Beehive_core.Platform
module App = Beehive_core.App
module Mapping = Beehive_core.Mapping
module Context = Beehive_core.Context
module Message = Beehive_core.Message
module Value = Beehive_core.Value
module Instrumentation = Beehive_core.Instrumentation
module Membership = Beehive_elastic.Membership

type Message.payload += Hit of { url : string }

let k_hit = "elastic.hit"
let app_name = "elastic.counter"

let counter_app =
  App.create ~name:app_name ~dicts:[ "hits" ]
    [
      App.handler ~kind:k_hit
        ~map:(fun msg ->
          match msg.Message.payload with
          | Hit { url } -> Mapping.with_key "hits" url
          | _ -> Mapping.Drop)
        (fun ctx msg ->
          match msg.Message.payload with
          | Hit { url } ->
            Context.update ctx ~dict:"hits" ~key:url (function
              | Some (Value.V_int n) -> Some (Value.V_int (n + 1))
              | _ -> Some (Value.V_int 1))
          | _ -> ());
    ]

let urls =
  [| "/"; "/docs"; "/api"; "/login"; "/search"; "/about"; "/pricing"; "/blog" |]

let show_cluster platform =
  List.iter
    (fun h ->
      let bees =
        List.filter
          (fun (v : Platform.bee_view) ->
            v.Platform.view_hive = h
            && v.Platform.view_app = app_name
            && not v.Platform.view_is_local)
          (Platform.live_bees platform)
      in
      Format.printf "  hive %d (%-8s): %d counter bees@." h
        (Platform.hive_state_label (Platform.hive_state platform h))
        (List.length bees))
    (Platform.members platform)

let total platform =
  List.fold_left
    (fun acc (v : Platform.bee_view) ->
      List.fold_left
        (fun acc (_, _, value) ->
          match value with Value.V_int n -> acc + n | _ -> acc)
        acc
        (Platform.bee_state_entries platform v.Platform.view_id))
    0
    (List.filter
       (fun (v : Platform.bee_view) -> v.Platform.view_app = app_name)
       (Platform.live_bees platform))

let () =
  (* A 3-hive control plane with the placement optimizer watching. *)
  let engine = Engine.create () in
  let platform = Platform.create engine (Platform.default_config ~n_hives:3) in
  Platform.register_app platform counter_app;
  ignore
    (Instrumentation.install platform
       {
         Instrumentation.default_config with
         Instrumentation.window = Simtime.of_ms 200;
         optimize_every = Simtime.of_ms 500;
         optimize = true;
         policy = Some (Instrumentation.scale_out_policy ());
       });
  let membership = Membership.create platform in
  Platform.start platform;

  (* Steady traffic: a hit every millisecond, entering at rotating hives. *)
  let tick = ref 0 in
  let traffic =
    Engine.every engine (Simtime.of_ms 1) (fun () ->
        incr tick;
        let members =
          List.filter (Platform.placeable platform) (Platform.members platform)
        in
        let from = List.nth members (!tick mod List.length members) in
        Platform.inject platform ~from:(Channels.Hive from) ~kind:k_hit
          (Hit { url = urls.(!tick mod Array.length urls) }))
  in
  Engine.run_until engine (Simtime.of_sec 2.0);
  Format.printf "=== 3 hives under load@.";
  show_cluster platform;
  Format.printf "hits counted: %d@.@." (total platform);

  (* Scale out: one more hive. The scale-out policy spots the empty
     newcomer in the next optimization round and moves bees onto it. *)
  let joined = Membership.add_hive membership in
  Engine.run_until engine (Simtime.add (Engine.now engine) (Simtime.of_sec 2.0));
  Format.printf "=== hive %d joined@." joined;
  show_cluster platform;
  Format.printf "rebalance migrations so far: %d@.@."
    (Membership.rebalance_migrations membership);

  (* Scale in: retire hive 0. Its bees — and their counters — move away;
     when it owns nothing, it is decommissioned automatically. *)
  ignore
    (Membership.drain membership ~auto_decommission:true
       ~on_complete:(fun () -> Format.printf "drain of hive 0 complete@.") 0);
  Engine.run_until engine (Simtime.add (Engine.now engine) (Simtime.of_sec 2.0));
  (* Stop the traffic and let the last hits land before tallying. *)
  ignore (Engine.cancel engine traffic);
  Engine.run_until engine (Simtime.add (Engine.now engine) (Simtime.of_ms 100));
  Format.printf "=== hive 0 drained and decommissioned@.";
  show_cluster platform;
  Format.printf "hive 0 state: %s@."
    (Platform.hive_state_label (Platform.hive_state platform 0));
  Format.printf "hits counted (none lost): %d of %d injected@." (total platform) !tick
